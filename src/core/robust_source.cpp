#include "core/robust_source.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace pwx::core {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

// Counters mirroring RobustSourceStats, plus the health gauge. Names line up
// with the struct fields so dashboards and stats() agree.
struct RobustMetrics {
  obs::Counter& reads;
  obs::Counter& read_errors;
  obs::Counter& invalid_samples;
  obs::Counter& overflow_corrections;
  obs::Counter& watchdog_timeouts;
  obs::Counter& held_samples;
  obs::Counter& start_retries;
  obs::Counter& health_transitions;
  obs::Gauge& health;
};

RobustMetrics& robust_metrics() {
  static RobustMetrics m{
      obs::registry().counter("robust_source.reads", "clean samples delivered"),
      obs::registry().counter("robust_source.read_errors",
                              "inner-source reads that threw"),
      obs::registry().counter("robust_source.invalid_samples",
                              "samples rejected by sanitisation"),
      obs::registry().counter("robust_source.overflow_corrections",
                              "counter-wrap deltas corrected"),
      obs::registry().counter("robust_source.watchdog_timeouts",
                              "reads slower than the watchdog budget"),
      obs::registry().counter("robust_source.held_samples",
                              "stale samples re-served while degraded"),
      obs::registry().counter("robust_source.start_retries",
                              "start attempts that needed a retry"),
      obs::registry().counter("robust_source.health_transitions",
                              "robust source health-state changes"),
      obs::registry().gauge("robust_source.health",
                            "robust source health (0=ok, 1=degraded, 2=failed)"),
  };
  return m;
}

// Publishes the health gauge (and a transition tick) once per public call,
// regardless of which early return fires.
class HealthScope {
 public:
  explicit HealthScope(const HealthState& health)
      : health_(health), before_(health) {}
  HealthScope(const HealthScope&) = delete;
  HealthScope& operator=(const HealthScope&) = delete;
  ~HealthScope() {
    if (!obs::enabled()) {
      return;
    }
    RobustMetrics& m = robust_metrics();
    if (health_ != before_) {
      m.health_transitions.add(1);
    }
    m.health.set(static_cast<double>(health_));
  }

 private:
  const HealthState& health_;
  const HealthState before_;
};

}  // namespace

RobustCounterSource::RobustCounterSource(CounterSource& inner,
                                         RobustSourceConfig config)
    : inner_(inner), config_(config) {
  PWX_REQUIRE(config_.start_attempts > 0, "start_attempts must be positive");
  PWX_REQUIRE(config_.read_attempts > 0, "read_attempts must be positive");
  PWX_REQUIRE(config_.counter_wrap > 0.0, "counter_wrap must be positive");
}

std::vector<pmc::Preset> RobustCounterSource::available_events() const {
  return inner_.available_events();
}

void RobustCounterSource::start(const std::vector<pmc::Preset>& events) {
  const HealthScope health_scope(health_);
  double backoff = config_.start_backoff_s;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      inner_.start(events);
      health_ = HealthState::Ok;
      clean_streak_ = 0;
      exhausted_in_a_row_ = 0;
      held_in_a_row_ = 0;
      last_good_.reset();
      return;
    } catch (const Error& e) {
      if (attempt >= config_.start_attempts) {
        health_ = HealthState::Failed;
        throw e.with_context("RobustCounterSource: start failed after " +
                             std::to_string(attempt) + " attempts");
      }
      stats_.start_retries += 1;
      robust_metrics().start_retries.add(1);
      PWX_LOG_WARN("RobustCounterSource: start attempt ", attempt, " failed (",
                   e.what(), "), retrying");
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2.0;
      }
    }
  }
}

std::optional<CounterSample> RobustCounterSource::sanitize(CounterSample sample) {
  if (!finite_positive(sample.elapsed_s) || !finite_positive(sample.frequency_ghz) ||
      !finite_positive(sample.voltage)) {
    return std::nullopt;
  }
  for (auto& [preset, count] : sample.counts) {
    if (!std::isfinite(count)) {
      return std::nullopt;
    }
    // A delta more negative than half the counter width is a wrap, not a
    // genuine negative count: the counter passed its maximum mid-interval.
    if (count < -0.5 * config_.counter_wrap) {
      count += config_.counter_wrap;
      stats_.overflow_corrections += 1;
      robust_metrics().overflow_corrections.add(1);
    }
    if (count < 0.0) {
      return std::nullopt;
    }
  }
  return sample;
}

void RobustCounterSource::note_fault() {
  clean_streak_ = 0;
  if (health_ == HealthState::Ok) {
    health_ = HealthState::Degraded;
  }
}

void RobustCounterSource::note_good() {
  exhausted_in_a_row_ = 0;
  held_in_a_row_ = 0;
  if (health_ == HealthState::Degraded &&
      ++clean_streak_ >= config_.recover_streak) {
    health_ = HealthState::Ok;
    clean_streak_ = 0;
  }
}

std::optional<CounterSample> RobustCounterSource::read() {
  const HealthScope health_scope(health_);
  if (health_ == HealthState::Failed) {
    return std::nullopt;
  }
  for (std::size_t attempt = 0; attempt < config_.read_attempts; ++attempt) {
    std::optional<CounterSample> raw;
    const double begin = monotonic_seconds();
    try {
      raw = inner_.read();
    } catch (const Error& e) {
      stats_.read_errors += 1;
      robust_metrics().read_errors.add(1);
      note_fault();
      PWX_LOG_DEBUG("RobustCounterSource: read threw (", e.what(), ")");
      continue;
    }
    if (monotonic_seconds() - begin > config_.read_timeout_s) {
      stats_.watchdog_timeouts += 1;
      robust_metrics().watchdog_timeouts.add(1);
      note_fault();  // stalled reads degrade health, but the data may be good
    }
    if (!raw.has_value()) {
      return std::nullopt;  // source genuinely exhausted; not a fault
    }
    std::optional<CounterSample> clean = sanitize(std::move(*raw));
    if (!clean.has_value()) {
      stats_.invalid_samples += 1;
      robust_metrics().invalid_samples.add(1);
      note_fault();
      continue;
    }
    note_good();
    stats_.reads += 1;
    robust_metrics().reads.add(1);
    last_good_ = clean;
    return clean;
  }

  // Retry budget exhausted. Hold the last good sample to keep the stream
  // alive while DEGRADED; two consecutive exhaustions (or running out of
  // hold budget) is FAILED.
  note_fault();
  exhausted_in_a_row_ += 1;
  if (exhausted_in_a_row_ >= 2 || !last_good_.has_value() ||
      held_in_a_row_ >= config_.max_held_samples) {
    health_ = HealthState::Failed;
    PWX_LOG_WARN("RobustCounterSource: read retry budget exhausted, FAILED");
    return std::nullopt;
  }
  held_in_a_row_ += 1;
  stats_.held_samples += 1;
  robust_metrics().held_samples.add(1);
  return last_good_;
}

}  // namespace pwx::core
