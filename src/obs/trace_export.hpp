// Exporters over drained SpanRecords (obs/trace.hpp).
//
// Three consumers, all deterministic given the record list:
//
//   * Chrome trace-event JSON — the {"traceEvents":[...]} format Perfetto
//     and chrome://tracing load directly. Complete events ("ph":"X") with
//     microsecond ts/dur; trace/span/parent ids and span attributes ride in
//     "args" so clicking a slice shows its causal identity.
//   * Span JSONL — one {"event":"span",...} line per record for streaming
//     collectors (pwx-monitor --trace, pwx-ingestd flight dumps). The
//     inverse parser reads a recorded stream back for offline replay.
//   * Latency attribution — per-name total/self-time aggregation over a
//     span forest (self = duration minus direct children), rendered as a
//     table: the "which stage owns the p99" view.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace pwx::obs {

/// Chrome trace-event document ({"displayTimeUnit","traceEvents":[...]}),
/// one complete ("X") event per span, timestamps in microseconds.
Json chrome_trace_json(const std::vector<SpanRecord>& records);

/// One JSON-lines span event (compact, newline not included):
/// {"event":"span","trace":"<hex>","span":"<hex>","parent":"<hex>"?,
///  "name":...,"start_s":...,"dur_s":...,"thread":N,"attrs":{...}?}
std::string span_to_jsonl_line(const SpanRecord& record);

/// Parse a span JSONL stream back into records. Lines that are not span
/// events (e.g. interleaved {"event":"metrics"} lines) are skipped; a
/// malformed line throws pwx::IoError with its 1-based line number.
std::vector<SpanRecord> parse_span_jsonl(std::string_view text);

/// Per-name latency attribution over a span forest.
struct SpanAttribution {
  std::string name;
  std::uint64_t calls = 0;
  double total_s = 0.0;  ///< sum of durations
  double self_s = 0.0;   ///< total minus time in direct children
  double max_s = 0.0;    ///< slowest single span
};

/// Aggregate records per span name. self_s subtracts each span's direct
/// children (matched by parent_id), so a stage that merely waits on its
/// sub-stages attributes the time to them. Sorted by self_s descending,
/// name ascending on ties — deterministic for golden tests.
std::vector<SpanAttribution> attribute_latency(const std::vector<SpanRecord>& records);

/// Render the attribution table (calls, total, self, self%, mean, max).
void print_attribution_table(const std::vector<SpanAttribution>& attribution,
                             std::ostream& out);

}  // namespace pwx::obs
