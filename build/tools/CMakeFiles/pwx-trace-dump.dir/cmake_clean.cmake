file(REMOVE_RECURSE
  "CMakeFiles/pwx-trace-dump.dir/trace_dump.cpp.o"
  "CMakeFiles/pwx-trace-dump.dir/trace_dump.cpp.o.d"
  "pwx-trace-dump"
  "pwx-trace-dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx-trace-dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
