// Power-measurement instrumentation model.
//
// The paper's testbed instruments the 12 V inputs of each socket with
// calibrated high-resolution sensors, sampled on a separate system [1]. The
// model reproduces the relevant error sources of such an instrument chain:
// per-channel gain and offset calibration residuals (fixed per sensor),
// white noise per sample, and finite sample rate. The acquisition layer
// averages samples over a phase, exactly like the paper's post-processing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace pwx::power {

/// Configuration of one measurement channel.
struct SensorSpec {
  double sample_rate_hz = 1000.0;   ///< high-resolution channel
  double noise_floor_watts = 0.25;  ///< additive white noise sigma per sample
  double noise_relative = 0.004;    ///< multiplicative noise sigma per sample
  double gain_error_sigma = 0.006;  ///< calibration residual (fixed per channel)
  double offset_error_sigma_watts = 0.35;
};

/// One sampled measurement channel (one socket's 12 V input).
class PowerSensor {
public:
  /// Draws the fixed per-channel gain/offset residuals from `seed`.
  PowerSensor(const SensorSpec& spec, std::uint64_t seed);

  /// Sample a constant true power for `duration_s`; returns the samples.
  std::vector<double> sample(double true_watts, double duration_s, Rng& rng) const;

  /// Time-averaged reading over an interval (what the phase profile stores).
  double average(double true_watts, double duration_s, Rng& rng) const;

  double gain() const { return gain_; }
  double offset_watts() const { return offset_; }
  const SensorSpec& spec() const { return spec_; }

private:
  SensorSpec spec_;
  double gain_ = 1.0;
  double offset_ = 0.0;
};

}  // namespace pwx::power
