# Empty dependencies file for pwx_cpu.
# This may be replaced when dependencies are built.
