#include "core/model_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace pwx::core {

namespace {

const char* cov_name(regress::CovarianceType cov) {
  switch (cov) {
    case regress::CovarianceType::NonRobust: return "nonrobust";
    case regress::CovarianceType::HC0: return "HC0";
    case regress::CovarianceType::HC1: return "HC1";
    case regress::CovarianceType::HC2: return "HC2";
    case regress::CovarianceType::HC3: return "HC3";
  }
  return "nonrobust";
}

regress::CovarianceType cov_from_name(const std::string& name) {
  if (name == "nonrobust") return regress::CovarianceType::NonRobust;
  if (name == "HC0") return regress::CovarianceType::HC0;
  if (name == "HC1") return regress::CovarianceType::HC1;
  if (name == "HC2") return regress::CovarianceType::HC2;
  if (name == "HC3") return regress::CovarianceType::HC3;
  throw IoError("unknown covariance type '" + name + "' in model file");
}

}  // namespace

std::string model_to_json(const PowerModel& model) {
  Json root;
  root["format"] = "pwx-power-model";
  root["version"] = 1;

  Json::Array events;
  for (pmc::Preset preset : model.spec().events) {
    events.emplace_back(std::string(pmc::preset_name(preset)));
  }
  root["events"] = Json(std::move(events));
  root["normalization"] =
      model.spec().normalization == RateNormalization::PerCycle ? "per_cycle"
                                                                : "per_second";
  root["include_dynamic_base"] = model.spec().include_dynamic_base;
  root["include_static_v"] = model.spec().include_static_v;

  Json::Array beta;
  Json::Array se;
  for (std::size_t i = 0; i < model.fit().beta.size(); ++i) {
    beta.emplace_back(model.fit().beta[i]);
    se.emplace_back(model.fit().standard_error[i]);
  }
  root["coefficients"] = Json(std::move(beta));
  root["standard_errors"] = Json(std::move(se));
  root["cov_type"] = cov_name(model.fit().cov_type);
  root["r_squared"] = model.fit().r_squared;
  root["adj_r_squared"] = model.fit().adj_r_squared;
  root["n_observations"] = model.fit().n_observations;
  return root.dump();
}

void save_model(const PowerModel& model, const std::string& path) {
  // Crash-safe save: write to a temp file in the target's directory, fsync
  // it, then rename() into place. A crash at any point leaves either the old
  // complete file or the new complete file — never a torn model (rename is
  // atomic within a filesystem). The partial-write sweep in tests/core_test
  // pins that any torn byte prefix is rejected by load_model, so atomicity
  // here is what makes deployed model files trustworthy.
  const std::string payload = model_to_json(model) + '\n';
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw IoError("cannot open '" + temp + "' for writing: " +
                  std::strerror(errno));
  }
  const char* data = payload.data();
  std::size_t remaining = payload.size();
  while (remaining > 0) {
    const ::ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string reason = std::strerror(errno);
      ::close(fd);
      ::unlink(temp.c_str());
      throw IoError("write to '" + temp + "' failed: " + reason);
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const std::string reason = std::strerror(errno);
    ::unlink(temp.c_str());
    throw IoError("flush of '" + temp + "' failed: " + reason);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    ::unlink(temp.c_str());
    throw IoError("rename of '" + temp + "' to '" + path + "' failed: " + reason);
  }
  // Persist the rename itself (directory entry), so a crash right after
  // save_model returns cannot resurface the old file. Best effort: some
  // filesystems refuse directory fsync.
  const std::size_t sep = path.find_last_of('/');
  const std::string dir = sep == std::string::npos ? "." : path.substr(0, sep + 1);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

PowerModel model_from_json(const std::string& text) {
  // Json::at/as_* throw plain pwx::Error on missing keys / wrong types;
  // re-type everything here so callers see a descriptive IoError for any
  // malformed model file.
  try {
    const Json root = Json::parse(text);
    if (root.at("format").as_string() != "pwx-power-model") {
      throw IoError("not a pwx power model file");
    }

    FeatureSpec spec;
    for (const Json& name : root.at("events").as_array()) {
      const auto preset = pmc::preset_from_name(name.as_string());
      if (!preset) {
        throw IoError("unknown preset '" + name.as_string() + "' in model file");
      }
      spec.events.push_back(*preset);
    }
    if (spec.events.empty()) {
      throw IoError("model file lists no events");
    }
    spec.normalization = root.at("normalization").as_string() == "per_cycle"
                             ? RateNormalization::PerCycle
                             : RateNormalization::PerSecond;
    spec.include_dynamic_base = root.at("include_dynamic_base").as_bool();
    spec.include_static_v = root.at("include_static_v").as_bool();

    regress::OlsResult fit;
    for (const Json& value : root.at("coefficients").as_array()) {
      const double beta = value.as_number();
      if (!std::isfinite(beta)) {
        throw IoError("model file coefficient " + std::to_string(fit.beta.size()) +
                      " is not finite");
      }
      fit.beta.push_back(beta);
    }
    for (const Json& value : root.at("standard_errors").as_array()) {
      const double se = value.as_number();
      if (!std::isfinite(se) || se < 0.0) {
        throw IoError("model file standard error " +
                      std::to_string(fit.standard_error.size()) +
                      " is not finite and non-negative");
      }
      fit.standard_error.push_back(se);
    }
    if (fit.beta.size() != spec.column_count() + 1) {
      throw IoError("model file coefficient count does not match the feature spec");
    }
    if (fit.standard_error.size() != fit.beta.size()) {
      throw IoError("model file standard error count does not match coefficients");
    }
    fit.has_intercept = true;
    fit.cov_type = cov_from_name(root.at("cov_type").as_string());
    fit.r_squared = root.at("r_squared").as_number();
    fit.adj_r_squared = root.at("adj_r_squared").as_number();
    const double n_obs = root.at("n_observations").as_number();
    if (!std::isfinite(n_obs) || n_obs < 0.0 ||
        n_obs != std::floor(n_obs)) {
      throw IoError("model file n_observations must be a non-negative integer");
    }
    fit.n_observations = static_cast<std::size_t>(n_obs);
    fit.n_parameters = fit.beta.size();
    if (fit.n_observations > 0 && fit.n_observations < fit.n_parameters) {
      throw IoError("model file n_observations is smaller than the parameter count");
    }
    return PowerModel(spec, std::move(fit));
  } catch (const IoError&) {
    throw;
  } catch (const Error& e) {
    throw IoError(std::string("malformed model file: ") + e.what());
  }
}

PowerModel load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return model_from_json(buffer.str());
}

}  // namespace pwx::core
