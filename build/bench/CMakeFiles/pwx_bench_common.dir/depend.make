# Empty dependencies file for pwx_bench_common.
# This may be replaced when dependencies are built.
