file(REMOVE_RECURSE
  "libpwx_la.a"
)
