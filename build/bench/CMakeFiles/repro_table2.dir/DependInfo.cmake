
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/repro_table2.cpp" "bench/CMakeFiles/repro_table2.dir/repro_table2.cpp.o" "gcc" "bench/CMakeFiles/repro_table2.dir/repro_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pwx_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/pwx_host.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pwx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/regress/CMakeFiles/pwx_regress.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pwx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/acquire/CMakeFiles/pwx_acquire.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pwx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pwx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pwx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pwx_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/pwx_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pwx_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pwx_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pwx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
