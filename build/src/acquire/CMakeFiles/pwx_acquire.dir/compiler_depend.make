# Empty compiler generated dependencies file for pwx_acquire.
# This may be replaced when dependencies are built.
