// Table IV — Selected performance counters based on small synthetic
// workloads only.
//
// Paper: running Algorithm 1 on the roco2-only subset selects a *different*
// counter set (L1_LDM, REF_CYC, BR_PRC, L3_LDM, FUL_CCY, STL_ICY) and the
// mean VIF rises sharply from the fifth counter (8.98, then 13.62) — the
// narrow synthetic workloads cannot pin down a stable set.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header(
      "Table IV: counters selected on synthetic (roco2) workloads only",
      "different set than Table I; mean VIF explodes from the 5th counter "
      "(8.98, 13.62) — low VIF is no guarantee of stability");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  const acquire::Dataset synthetic = p.selection->filter_suite(workloads::Suite::Roco2);

  core::SelectionOptions opt;
  opt.count = 6;  // unconstrained, like the paper's Table IV
  const core::SelectionResult result =
      core::select_events(synthetic, pmc::haswell_ep_available_events(), opt);

  std::puts("paper reference (Table IV):");
  TablePrinter ref({"Counter", "R2", "Adj.R2", "mean VIF"});
  ref.row({"L1_LDM", "0.839", "0.836", "n/a"});
  ref.row({"REF_CYC", "0.941", "0.938", "1.084"});
  ref.row({"BR_PRC", "0.973", "0.971", "1.340"});
  ref.row({"L3_LDM", "0.990", "0.989", "1.341"});
  ref.row({"FUL_CCY", "0.993", "0.993", "8.982"});
  ref.row({"STL_ICY", "0.995", "0.994", "13.617"});
  ref.print(std::cout);

  std::printf("\nthis reproduction (%zu synthetic rows):\n", synthetic.size());
  TablePrinter ours({"Counter", "R2", "Adj.R2", "mean VIF"});
  for (const core::SelectionStep& step : result.steps) {
    ours.row({std::string(pmc::preset_name(step.event)),
              format_double(step.r_squared, 3), format_double(step.adj_r_squared, 3),
              bench::vif_cell(step.mean_vif)});
  }
  ours.print(std::cout);

  // Compare against the all-workload selection.
  std::puts("\nall-workload selection (Table I, vetoed) for comparison:");
  std::printf(" ");
  for (const core::SelectionStep& step : p.vetoed.steps) {
    std::printf(" %s", std::string(pmc::preset_name(step.event)).c_str());
  }
  std::puts("");
  std::printf("synthetic-only selection:\n ");
  for (const core::SelectionStep& step : result.steps) {
    std::printf(" %s", std::string(pmc::preset_name(step.event)).c_str());
  }
  std::puts("\n\nshape check: the synthetic-only set differs from the all-workload\n"
            "set and its mean VIF rises far above the all-workload trajectory in\n"
            "the later steps — the paper's warning about narrow training sets.");
  return 0;
}
