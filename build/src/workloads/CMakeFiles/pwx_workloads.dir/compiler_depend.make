# Empty compiler generated dependencies file for pwx_workloads.
# This may be replaced when dependencies are built.
