file(REMOVE_RECURSE
  "CMakeFiles/pwx_sim.dir/engine.cpp.o"
  "CMakeFiles/pwx_sim.dir/engine.cpp.o.d"
  "libpwx_sim.a"
  "libpwx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
