// Binary serialization of OTF2-lite traces.
//
// Two on-disk generations share one reader entry point:
//
//   v3 ("OTF2LTv3", current writer) — a section-table format laid out for
//   bulk I/O: after the magic comes a table of (section id, byte size)
//   entries, then the attribute / metric / region-table / event sections.
//   The event section stores the columnar arrays (times, kinds, ids,
//   values) as contiguous little-endian blocks, so writing and reading are
//   a handful of bulk copies instead of per-record stream operations. The
//   body is covered by an FNV-1a checksum footer computed over 64-bit
//   lanes, keeping the v2 end-to-end integrity contract at a fraction of
//   the per-byte hashing cost.
//
//   v2 ("OTF2LTv2", legacy) — per-record little-endian stream with a
//   byte-wise FNV-1a footer. read_trace() transparently falls back to the
//   v2 parser, so archived traces stay readable; write_trace_v2() keeps
//   producing the legacy bytes for compatibility tooling and tests.
//
// Both readers fully validate structure AND integrity, so any truncation
// or bit flip — including ones inside numeric payloads that would parse
// fine — fails loudly instead of producing silent garbage profiles.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pwx::trace {

/// Serialize to a binary stream / file (v3 section-table format). Throws
/// pwx::IoError on failure.
void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Serialize in the legacy v2 per-record format (compatibility writer for
/// archival tooling and read-compat tests).
void write_trace_v2(const Trace& trace, std::ostream& out);

/// Deserialize v3 or v2 bytes; throws pwx::IoError on malformed, truncated,
/// or corrupted input. The error carries the byte offset and event-record
/// index where parsing stopped (IoError::byte_offset / record_index).
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace pwx::trace
