#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pwx::core {

namespace {

// Metric handles for the guarded estimation path. The strict estimate()
// fast path stays uninstrumented to honour the overhead contract.
struct EstimatorMetrics {
  obs::Counter& estimates;
  obs::Counter& invalid_samples;
  obs::Counter& clamped;
  obs::Counter& health_transitions;
  obs::Gauge& health;
};

EstimatorMetrics& estimator_metrics() {
  static EstimatorMetrics m{
      obs::registry().counter("estimator.estimates",
                              "guarded power estimates produced"),
      obs::registry().counter("estimator.invalid_samples",
                              "samples rejected by the guarded estimator"),
      obs::registry().counter("estimator.clamped",
                              "raw estimates clamped into the guard range"),
      obs::registry().counter("estimator.health_transitions",
                              "estimator health-state changes"),
      obs::registry().gauge("estimator.health",
                            "estimator health (0=ok, 1=degraded, 2=failed)"),
  };
  return m;
}

double smooth_step(double smoothing, double raw, GuardedState& state) {
  if (smoothing <= 0.0) {
    return raw;
  }
  if (!state.smoothed.has_value()) {
    state.smoothed = raw;
  } else {
    state.smoothed = smoothing * *state.smoothed + (1.0 - smoothing) * raw;
  }
  return *state.smoothed;
}

}  // namespace

double guarded_fold_raw(double smoothing, const EstimatorGuards& guards,
                        bool valid, double raw, GuardedState& state) {
  const bool telemetry = obs::enabled();
  const HealthState before = state.health;
  if (valid) {
    state.consecutive_invalid = 0;
    state.health = HealthState::Ok;
    const double clamped = std::clamp(raw, guards.min_watts, guards.max_watts);
    const double out = smooth_step(smoothing, clamped, state);
    state.last_good = out;
    if (telemetry) {
      // Unguarded instrument ops: the one enabled() check above covers the
      // whole block, so the steady-state cost is a single atomic increment.
      EstimatorMetrics& m = estimator_metrics();
      m.estimates.add_unguarded(1);
      if (clamped != raw) {
        m.clamped.add_unguarded(1);
      }
      // The gauge is only written on transitions to keep the steady-state
      // cost of this hot path to one counter increment.
      if (state.health != before) {
        m.health_transitions.add_unguarded(1);
        m.health.set_unguarded(static_cast<double>(state.health));
      }
    }
    return out;
  }
  // Invalid sample: hold the last good estimate with a bounded staleness.
  state.consecutive_invalid += 1;
  state.health = state.consecutive_invalid > guards.max_consecutive_invalid
                     ? HealthState::Failed
                     : HealthState::Degraded;
  const double held = state.last_good.value_or(guards.min_watts);
  // Black-box dump on the health *transition* (not every held estimate):
  // the flight ring at this moment holds the spans and metric deltas that
  // led into the degradation. Transition-only keeps the hot path clean.
  if (state.health != before && obs::flight().armed()) {
    obs::flight().trigger(state.health == HealthState::Failed
                              ? "estimator_failed"
                              : "estimator_degraded");
  }
  if (telemetry) {
    EstimatorMetrics& m = estimator_metrics();
    m.estimates.add_unguarded(1);
    m.invalid_samples.add_unguarded(1);
    if (state.health != before) {
      m.health_transitions.add_unguarded(1);
      m.health.set_unguarded(static_cast<double>(state.health));
    }
  }
  return std::clamp(held, guards.min_watts, guards.max_watts);
}

double guarded_estimate_step(const ModelLayout& layout, double smoothing,
                             const EstimatorGuards& guards,
                             const DenseSample& sample, GuardedState& state) {
  const std::optional<double> raw = layout.try_predict(sample);
  return guarded_fold_raw(smoothing, guards, raw.has_value(),
                          raw.value_or(0.0), state);
}

void note_batch_lanes(std::size_t samples, std::size_t invalid) {
  if (!obs::enabled()) {
    return;
  }
  static obs::Counter& batch_samples = obs::registry().counter(
      "estimate.batch.samples", "samples estimated through the batched path");
  static obs::Counter& batch_invalid = obs::registry().counter(
      "estimate.batch.lanes_invalid",
      "batched-path lanes rejected by sample validation");
  batch_samples.add_unguarded(samples);
  batch_invalid.add_unguarded(invalid);
}

void guarded_estimate_batch(const ModelLayout& layout, double smoothing,
                            const EstimatorGuards& guards,
                            const SampleBatch& batch, GuardedState& state,
                            std::span<double> out,
                            std::span<HealthState> health_out) {
  const std::size_t lanes = batch.size();
  PWX_REQUIRE(out.size() >= lanes, "output span has ", out.size(),
              " entries for ", lanes, " lanes");
  PWX_REQUIRE(health_out.empty() || health_out.size() >= lanes,
              "health span has ", health_out.size(), " entries for ", lanes,
              " lanes");
  if (lanes == 0) {
    return;
  }
  if (batch.slots() != layout.slots()) {
    // The batch was built against a layout a hot swap replaced: every lane
    // is invalid, exactly as per-sample conversion would conclude.
    for (std::size_t k = 0; k < lanes; ++k) {
      out[k] = guarded_fold_raw(smoothing, guards, false, 0.0, state);
      if (!health_out.empty()) {
        health_out[k] = state.health;
      }
    }
    note_batch_lanes(lanes, lanes);
    return;
  }
  // Raw predictions land directly in `out` and are folded in place — the
  // guarded step only ever reads lane k's raw value before writing lane k.
  // When no smoothing or telemetry needs the unclamped raw value, the guard
  // clamp is fused into the kernel store (clamping is idempotent, so lanes
  // that still go through the per-lane fold below produce identical bits).
  thread_local std::vector<std::uint8_t> valids;
  valids.resize(lanes);
  const bool fused_clamp = smoothing <= 0.0 && !obs::enabled();
  if (fused_clamp) {
    predict_batch_clamped(layout, batch, guards.min_watts, guards.max_watts,
                          out, valids);
  } else {
    predict_batch_guarded(layout, batch, out, valids);
  }
  std::uint8_t all_valid = 1;
  for (std::size_t k = 0; k < lanes; ++k) {
    all_valid &= valids[k];
  }
  // Fast path: every lane valid, no smoothing, telemetry off. Each fold
  // then degenerates to the clamp the kernel already applied plus the same
  // terminal state (health Ok, invalid streak 0, last_good = the final
  // lane's output, smoothed untouched) — so the state machine is applied
  // once and the outputs are already final. Identical outputs and end
  // state to the lane-by-lane fold; any smoothing, telemetry, or invalid
  // lane falls through to it.
  if (all_valid != 0 && fused_clamp) {
    state.consecutive_invalid = 0;
    state.health = HealthState::Ok;
    state.last_good = out[lanes - 1];
    if (!health_out.empty()) {
      std::fill_n(health_out.begin(), lanes, HealthState::Ok);
    }
    return;
  }
  std::size_t invalid = 0;
  for (std::size_t k = 0; k < lanes; ++k) {
    const bool valid = valids[k] != 0;
    invalid += valid ? 0 : 1;
    out[k] = guarded_fold_raw(smoothing, guards, valid, out[k], state);
    if (!health_out.empty()) {
      health_out[k] = state.health;
    }
  }
  note_batch_lanes(lanes, invalid);
}

OnlineEstimator::OnlineEstimator(PowerModel model, double smoothing,
                                 EstimatorGuards guards)
    : current_(std::make_shared<const PublishedModel>(std::move(model), 1)),
      smoothing_(smoothing), guards_(guards),
      scratch_(current_->layout.make_sample()) {
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  PWX_REQUIRE(guards_.min_watts <= guards_.max_watts,
              "estimator guard range is inverted");
}

OnlineEstimator::OnlineEstimator(std::shared_ptr<LayoutEpoch> epoch,
                                 double smoothing, EstimatorGuards guards)
    : epoch_(std::move(epoch)), smoothing_(smoothing), guards_(guards) {
  PWX_REQUIRE(epoch_ != nullptr, "estimator needs a non-null epoch");
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  PWX_REQUIRE(guards_.min_watts <= guards_.max_watts,
              "estimator guard range is inverted");
  current_ = epoch_->current();
  scratch_ = current_->layout.make_sample();
}

double OnlineEstimator::smooth(double raw) {
  return smooth_step(smoothing_, raw, state_);
}

void OnlineEstimator::maybe_adopt() {
  if (epoch_ != nullptr && epoch_->generation() != current_->generation) {
    PWX_SPAN("epoch.adopt");
    current_ = epoch_->current();
    scratch_ = current_->layout.make_sample();
    // GuardedState survives: the held estimate and smoothing accumulator
    // carry across the swap, so the output stream never drops or restarts.
  }
}

double OnlineEstimator::estimate(const CounterSample& sample) {
  PWX_REQUIRE(sample.elapsed_s > 0.0, "sample needs a positive elapsed time");
  PWX_REQUIRE(sample.frequency_ghz > 0.0, "sample needs a frequency");
  PWX_REQUIRE(sample.voltage > 0.0, "sample needs a voltage");
  maybe_adopt();
  current_->layout.to_dense(sample, scratch_);
  return smooth(current_->layout.predict(scratch_));
}

double OnlineEstimator::estimate(const DenseSample& sample) {
  PWX_REQUIRE(sample.elapsed_s > 0.0, "sample needs a positive elapsed time");
  PWX_REQUIRE(sample.frequency_ghz > 0.0, "sample needs a frequency");
  PWX_REQUIRE(sample.voltage > 0.0, "sample needs a voltage");
  maybe_adopt();
  return smooth(current_->layout.predict(sample));
}

double OnlineEstimator::estimate_guarded(const CounterSample& sample) {
  maybe_adopt();
  current_->layout.to_dense_guarded(sample, scratch_);
  return guarded_estimate_step(current_->layout, smoothing_, guards_, scratch_,
                               state_);
}

double OnlineEstimator::estimate_guarded(const DenseSample& sample) {
  maybe_adopt();
  return guarded_estimate_step(current_->layout, smoothing_, guards_, sample,
                               state_);
}

void OnlineEstimator::estimate_batch_guarded(const SampleBatch& batch,
                                             std::span<double> out,
                                             std::span<HealthState> health_out) {
  maybe_adopt();
  guarded_estimate_batch(current_->layout, smoothing_, guards_, batch, state_,
                         out, health_out);
}

void OnlineEstimator::estimate_batch_guarded(
    std::span<const CounterSample> samples, SampleBatch& scratch,
    std::span<double> out, std::span<HealthState> health_out) {
  // Adopt before converting so the batch is built against the layout that
  // will score it — the slot-mismatch all-invalid path cannot trigger here.
  maybe_adopt();
  scratch.reset(current_->layout, samples.size());
  for (const CounterSample& sample : samples) {
    scratch.append_guarded(current_->layout, sample);
  }
  guarded_estimate_batch(current_->layout, smoothing_, guards_, scratch, state_,
                         out, health_out);
}

void OnlineEstimator::reset() { state_.reset(); }

}  // namespace pwx::core
