// SampleBatch, the portable scalar kernel, and runtime kernel dispatch.
//
// This translation unit is compiled for the project's default target (no
// -mavx2), so the scalar kernel runs on any x86-64 and — crucially — can
// never be FMA-contracted into different rounding than ModelLayout::predict
// (the build also pins -ffp-contract=off on both kernel TUs). The AVX2
// kernel lives in dense_kernels_avx2.cpp, compiled per-file with
// -mavx2 -mfma and selected here at runtime.
#include "core/dense_kernels.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "core/estimator.hpp"
#include "trace/phase_profile.hpp"

namespace pwx::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::size_t round_up_lanes(std::size_t n) {
  return (n + kBatchLaneWidth - 1) / kBatchLaneWidth * kBatchLaneWidth;
}

/// If `e` is a normal power of two whose reciprocal is also normal, write
/// the exact reciprocal to `inv` and return true. For such values
/// c/e == c·(1/e) bit-for-bit: the reciprocal is exact, and division and
/// multiplication are both single correctly-rounded operations on the same
/// exact mathematical value (including overflow and subnormal results).
bool exact_reciprocal(double e, double& inv) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(e);
  const std::uint64_t mantissa = bits & 0xFFFFFFFFFFFFFull;
  const std::uint64_t exponent = (bits >> 52) & 0x7FF;
  if (mantissa != 0 || exponent < 1 || exponent > 2045) {
    return false;  // not a power of two, subnormal, zero, inf, or NaN
  }
  inv = std::bit_cast<double>(((2046 - exponent) << 52) |
                              (bits & 0x8000000000000000ull));
  return true;
}

}  // namespace

void SampleBatch::reset(const ModelLayout& layout, std::size_t capacity_hint) {
  if (columns_.size() != layout.slots()) {
    columns_.resize(layout.slots());
  }
  clear();
  const std::size_t lanes = round_up_lanes(capacity_hint);
  if (lanes > 0) {
    elapsed_.reserve(lanes);
    inv_elapsed_.reserve(lanes);
    frequency_.reserve(lanes);
    voltage_.reserve(lanes);
    lane_valid_.reserve(lanes);
    for (std::vector<double>& column : columns_) {
      column.reserve(lanes);
    }
  }
}

void SampleBatch::clear() {
  size_ = 0;
  elapsed_pow2_ = true;
  elapsed_.clear();
  inv_elapsed_.clear();
  frequency_.clear();
  voltage_.clear();
  lane_valid_.clear();
  for (std::vector<double>& column : columns_) {
    column.clear();
  }
}

std::size_t SampleBatch::grow_lane(double elapsed_s, double frequency_ghz,
                                   double voltage) {
  if (size_ == elapsed_.size()) {
    // Extend by one whole block, pre-filled with benign padding (meta 1.0,
    // counts 0.0): kernels can always evaluate full blocks without FP traps
    // or NaN spill from the tail.
    const std::size_t lanes = size_ + kBatchLaneWidth;
    elapsed_.resize(lanes, 1.0);
    inv_elapsed_.resize(lanes, 1.0);
    frequency_.resize(lanes, 1.0);
    voltage_.resize(lanes, 1.0);
    lane_valid_.resize(lanes, 1);
    for (std::vector<double>& column : columns_) {
      column.resize(lanes, 0.0);
    }
  }
  const std::size_t lane = size_++;
  elapsed_[lane] = elapsed_s;
  frequency_[lane] = frequency_ghz;
  voltage_[lane] = voltage;
  double inv = 1.0;
  if (!exact_reciprocal(elapsed_s, inv)) {
    elapsed_pow2_ = false;
  }
  inv_elapsed_[lane] = inv;
  // The meta half of try_predict's input predicate; finish_lane_counts ANDs
  // in the count half once the columns are written.
  const bool meta_ok = std::isfinite(elapsed_s) && elapsed_s > 0.0 &&
                       std::isfinite(frequency_ghz) && frequency_ghz > 0.0 &&
                       std::isfinite(voltage) && voltage > 0.0;
  lane_valid_[lane] = meta_ok ? 1 : 0;
  return lane;
}

void SampleBatch::finish_lane_counts(std::size_t lane) {
  bool ok = lane_valid_[lane] != 0;
  for (const std::vector<double>& column : columns_) {
    const double c = column[lane];
    ok = ok && std::isfinite(c) && c >= 0.0;
  }
  lane_valid_[lane] = ok ? 1 : 0;
}

std::size_t SampleBatch::append(const DenseSample& sample) {
  const std::size_t lane =
      grow_lane(sample.elapsed_s, sample.frequency_ghz, sample.voltage);
  if (sample.counts.size() != columns_.size()) {
    // Wrong slot count: poison the lane so the validity scan rejects it,
    // exactly as scalar try_predict rejects the wrong-sized sample.
    for (std::vector<double>& column : columns_) {
      column[lane] = kNaN;
    }
    lane_valid_[lane] = 0;
    return lane;
  }
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    columns_[s][lane] = sample.counts[s];
  }
  finish_lane_counts(lane);
  return lane;
}

std::size_t SampleBatch::append_guarded(const ModelLayout& layout,
                                        const CounterSample& sample) {
  PWX_REQUIRE(layout.slots() == slots(),
              "batch is bound to ", slots(), " slots, layout has ",
              layout.slots());
  const std::size_t lane =
      grow_lane(sample.elapsed_s, sample.frequency_ghz, sample.voltage);
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    const auto it = sample.counts.find(layout.events()[s]);
    columns_[s][lane] = it == sample.counts.end() ? kNaN : it->second;
  }
  finish_lane_counts(lane);
  return lane;
}

std::size_t SampleBatch::append_strict(const ModelLayout& layout,
                                       const CounterSample& sample) {
  PWX_REQUIRE(layout.slots() == slots(),
              "batch is bound to ", slots(), " slots, layout has ",
              layout.slots());
  // Validate before growing so a throw leaves the batch unchanged.
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    PWX_REQUIRE(sample.counts.find(layout.events()[s]) != sample.counts.end(),
                "sample lacks event ",
                std::string(pmc::preset_name(layout.events()[s])));
  }
  const std::size_t lane =
      grow_lane(sample.elapsed_s, sample.frequency_ghz, sample.voltage);
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    columns_[s][lane] = sample.counts.find(layout.events()[s])->second;
  }
  finish_lane_counts(lane);
  return lane;
}

std::size_t SampleBatch::append_row(const ModelLayout& layout,
                                    const acquire::DataRow& row) {
  PWX_REQUIRE(layout.slots() == slots(),
              "batch is bound to ", slots(), " slots, layout has ",
              layout.slots());
  // Mirror build_features_row's contract so the batched gate rejects the
  // same rows the matrix path would have thrown on.
  PWX_REQUIRE(row.avg_voltage > 0.0, "row ", row.workload, "/", row.phase,
              " lacks a voltage measurement");
  PWX_REQUIRE(row.frequency_ghz > 0.0, "row lacks a frequency");
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    PWX_REQUIRE(row.counter_rates.find(layout.events()[s]) !=
                    row.counter_rates.end(),
                "row ", row.workload, "/", row.phase, " lacks counter ",
                std::string(pmc::preset_name(layout.events()[s])));
  }
  // Rows store per-second rates; elapsed = 1.0 makes counts/elapsed
  // reproduce the rate bit-for-bit (see the header).
  const std::size_t lane = grow_lane(1.0, row.frequency_ghz, row.avg_voltage);
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    columns_[s][lane] = row.counter_rates.find(layout.events()[s])->second;
  }
  finish_lane_counts(lane);
  return lane;
}

std::size_t SampleBatch::append_profile(const ModelLayout& layout,
                                        const trace::PhaseProfile& profile) {
  PWX_REQUIRE(layout.slots() == slots(),
              "batch is bound to ", slots(), " slots, layout has ",
              layout.slots());
  const std::size_t lane =
      grow_lane(1.0, profile.frequency_ghz, profile.avg_voltage);
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    const auto it = profile.counter_rates.find(layout.events()[s]);
    columns_[s][lane] = it == profile.counter_rates.end() ? kNaN : it->second;
  }
  finish_lane_counts(lane);
  return lane;
}

namespace detail {

void predict_lanes_scalar(const BatchArgs& args) {
  for (std::size_t k = 0; k < args.lanes; ++k) {
    const double e = args.elapsed[k];
    const double f = args.frequency[k];
    const double v = args.voltage[k];
    // Operation-for-operation replay of ModelLayout::predict — every lane
    // is bit-identical to the scalar path on the same sample.
    const double v2f = v * v * f;
    double acc = args.intercept;
    for (std::size_t s = 0; s < args.slots; ++s) {
      // counts·(1/elapsed) is bit-identical to counts/elapsed when the
      // batch proved every elapsed a power of two (see BatchArgs).
      const double rate = args.inv_elapsed != nullptr
                              ? args.columns[s][k] * args.inv_elapsed[k]
                              : args.columns[s][k] / e;
      const double per = args.per_cycle ? rate / (f * 1e9) : rate / 1e9;
      acc += args.coef[s] * (per * v2f);
    }
    if (args.has_dyn) {
      acc += args.dyn_coef * v2f;
    }
    if (args.has_static) {
      acc += args.static_coef * v;
    }
    if (args.valid != nullptr) {
      // try_predict's verdict: input validity was captured at append time
      // (lane_valid), so only the output check remains here.
      args.valid[k] =
          (args.lane_valid[k] != 0 && std::isfinite(acc)) ? 1 : 0;
    }
    if (args.clamp) {
      // Exactly std::clamp's comparison order (the vector kernel mirrors
      // it with compare+blend, which preserves -0.0 and NaN bit-for-bit
      // where max/min instructions would not).
      acc = acc < args.clamp_min ? args.clamp_min
            : args.clamp_max < acc ? args.clamp_max
                                   : acc;
    }
    args.out[k] = acc;
  }
}

}  // namespace detail

namespace {

/// -1 = automatic dispatch; otherwise the forced BatchKernel value.
std::atomic<int> g_forced_kernel{-1};

bool avx2_compiled_in() {
#ifdef PWX_HAVE_AVX2_KERNEL
  return true;
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

BatchKernel detect_kernel() {
  const char* force = std::getenv("PWX_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return BatchKernel::Scalar;
  }
  if (avx2_compiled_in() && cpu_has_avx2()) {
    return BatchKernel::Avx2;
  }
  return BatchKernel::Scalar;
}

void run_kernel(const detail::BatchArgs& args) {
  switch (active_batch_kernel()) {
#ifdef PWX_HAVE_AVX2_KERNEL
    case BatchKernel::Avx2:
      detail::predict_lanes_avx2(args);
      return;
#endif
    default:
      detail::predict_lanes_scalar(args);
      return;
  }
}

struct ClampRange {
  double min = 0.0;
  double max = 0.0;
};

void predict_batch_impl(const ModelLayout& layout, const SampleBatch& batch,
                        std::span<double> out, std::uint8_t* valid,
                        const ClampRange* clamp = nullptr) {
  PWX_REQUIRE(batch.slots() == layout.slots(), "batch is bound to ",
              batch.slots(), " slots, layout has ", layout.slots());
  PWX_REQUIRE(out.size() >= batch.size(), "output span has ", out.size(),
              " entries for ", batch.size(), " lanes");
  if (batch.empty()) {
    return;
  }
  thread_local std::vector<const double*> columns;
  columns.resize(layout.slots());
  for (std::size_t s = 0; s < layout.slots(); ++s) {
    columns[s] = batch.count_lanes(s);
  }
  detail::BatchArgs args;
  args.elapsed = batch.elapsed_lanes();
  args.inv_elapsed =
      batch.elapsed_reciprocal_exact() ? batch.inv_elapsed_lanes() : nullptr;
  args.frequency = batch.frequency_lanes();
  args.voltage = batch.voltage_lanes();
  args.lane_valid = batch.valid_lanes();
  args.columns = columns.data();
  args.coef = layout.coefficients().data();
  args.slots = layout.slots();
  args.lanes = batch.size();
  args.intercept = layout.intercept();
  args.dyn_coef = layout.dyn_coef();
  args.static_coef = layout.static_coef();
  args.has_dyn = layout.has_dyn();
  args.has_static = layout.has_static();
  args.per_cycle = layout.per_cycle();
  if (clamp != nullptr) {
    args.clamp = true;
    args.clamp_min = clamp->min;
    args.clamp_max = clamp->max;
  }
  args.out = out.data();
  args.valid = valid;
  run_kernel(args);
}

}  // namespace

std::string_view batch_kernel_name(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::Avx2:
      return "avx2";
    default:
      return "scalar";
  }
}

bool batch_kernel_available(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::Scalar:
      return true;
    case BatchKernel::Avx2:
      return avx2_compiled_in() && cpu_has_avx2();
  }
  return false;
}

BatchKernel active_batch_kernel() {
  const int forced = g_forced_kernel.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<BatchKernel>(forced);
  }
  // Environment + cpuid are stable for the process lifetime: detect once.
  static const BatchKernel detected = detect_kernel();
  return detected;
}

void force_batch_kernel(std::optional<BatchKernel> kernel) {
  if (!kernel.has_value()) {
    g_forced_kernel.store(-1, std::memory_order_relaxed);
    return;
  }
  PWX_REQUIRE(batch_kernel_available(*kernel), "batch kernel '",
              std::string(batch_kernel_name(*kernel)),
              "' is unavailable on this machine");
  g_forced_kernel.store(static_cast<int>(*kernel), std::memory_order_relaxed);
}

void predict_batch(const ModelLayout& layout, const SampleBatch& batch,
                   std::span<double> out) {
  predict_batch_impl(layout, batch, out, nullptr);
}

void predict_batch_guarded(const ModelLayout& layout, const SampleBatch& batch,
                           std::span<double> out,
                           std::span<std::uint8_t> valid) {
  PWX_REQUIRE(valid.size() >= batch.size(), "validity span has ", valid.size(),
              " entries for ", batch.size(), " lanes");
  predict_batch_impl(layout, batch, out, valid.data());
}

void predict_batch_clamped(const ModelLayout& layout, const SampleBatch& batch,
                           double min_watts, double max_watts,
                           std::span<double> out,
                           std::span<std::uint8_t> valid) {
  PWX_REQUIRE(valid.size() >= batch.size(), "validity span has ", valid.size(),
              " entries for ", batch.size(), " lanes");
  const ClampRange clamp{min_watts, max_watts};
  predict_batch_impl(layout, batch, out, valid.data(), &clamp);
}

}  // namespace pwx::core
