#include "trace/plugins.hpp"

#include "common/error.hpp"
#include "common/units.hpp"
#include "pmc/activity.hpp"

namespace pwx::trace {

void PowerPlugin::define(Trace& trace) {
  metric_ = trace.define_metric({"power", "W", MetricMode::AsyncAverage});
}

void PowerPlugin::record(Trace& trace, const sim::IntervalRecord& interval) {
  trace.append(MetricEvent{units::s_to_ns(interval.t_end_s), metric_,
                           interval.measured_power_watts});
}

void VoltagePlugin::define(Trace& trace) {
  metric_ = trace.define_metric({"core_voltage", "V", MetricMode::AsyncInstant});
}

void VoltagePlugin::record(Trace& trace, const sim::IntervalRecord& interval) {
  trace.append(MetricEvent{units::s_to_ns(interval.t_end_s), metric_,
                           interval.measured_voltage});
}

ApapiPlugin::ApapiPlugin(std::vector<pmc::Preset> events) : events_(std::move(events)) {
  PWX_REQUIRE(!events_.empty(), "apapi plugin needs at least one event");
}

std::string ApapiPlugin::metric_name(pmc::Preset preset) {
  return "PAPI_" + std::string(pmc::preset_name(preset));
}

void ApapiPlugin::define(Trace& trace) {
  metrics_.clear();
  metrics_.reserve(events_.size());
  for (pmc::Preset preset : events_) {
    metrics_.push_back(
        trace.define_metric({metric_name(preset), "events", MetricMode::CounterIncrement}));
  }
}

void ApapiPlugin::record(Trace& trace, const sim::IntervalRecord& interval) {
  const std::uint64_t t = units::s_to_ns(interval.t_end_s);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    trace.append(
        MetricEvent{t, metrics_[i], pmc::preset_value(events_[i], interval.counts)});
  }
}

Trace build_trace(const sim::RunResult& run,
                  const std::vector<std::unique_ptr<MetricPlugin>>& plugins) {
  Trace trace;
  trace.set_attribute("workload", run.workload);
  trace.set_attribute("frequency_ghz", run.config.frequency_ghz);
  trace.set_attribute("threads", static_cast<double>(run.config.threads));
  trace.set_attribute("interval_s", run.config.interval_s);
  for (const auto& plugin : plugins) {
    plugin->define(trace);
  }

  // Region events bracket contiguous stretches of the same phase; metric
  // events land at interval ends, inside their phase region.
  std::string open_region;
  for (const sim::IntervalRecord& interval : run.intervals) {
    if (interval.phase != open_region) {
      const std::uint64_t t = units::s_to_ns(interval.t_begin_s);
      if (!open_region.empty()) {
        trace.append(RegionExit{t, open_region});
      }
      trace.append(RegionEnter{t, interval.phase});
      open_region = interval.phase;
    }
    for (const auto& plugin : plugins) {
      plugin->record(trace, interval);
    }
  }
  if (!open_region.empty() && !run.intervals.empty()) {
    trace.append(RegionExit{units::s_to_ns(run.intervals.back().t_end_s), open_region});
  }
  return trace;
}

Trace build_standard_trace(const sim::RunResult& run,
                           const std::vector<pmc::Preset>& events) {
  std::vector<std::unique_ptr<MetricPlugin>> plugins;
  plugins.push_back(std::make_unique<PowerPlugin>());
  plugins.push_back(std::make_unique<VoltagePlugin>());
  plugins.push_back(std::make_unique<ApapiPlugin>(events));
  return build_trace(run, plugins);
}

}  // namespace pwx::trace
