// Performance of the execution simulator and the acquisition campaign — the
// substrate cost that bounds every reproduction experiment.
#include <benchmark/benchmark.h>

#include "acquire/campaign.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwx;

void BM_SingleRun(benchmark::State& state) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  const auto workload = workloads::find_workload("md");
  sim::RunConfig rc;
  rc.threads = static_cast<std::size_t>(state.range(0));
  rc.interval_s = 0.25;
  rc.duration_scale = 0.4;
  for (auto _ : state) {
    const auto run = engine.run(*workload, rc);
    benchmark::DoNotOptimize(run.intervals.size());
  }
  state.counters["intervals"] = benchmark::Counter(
      static_cast<double>(engine.run(*workload, rc).intervals.size()));
}
BENCHMARK(BM_SingleRun)->Arg(1)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_CoreActivityGeneration(benchmark::State& state) {
  const auto workload = workloads::find_workload("bwaves");
  Rng rng(7);
  for (auto _ : state) {
    const auto counts = sim::generate_core_activity(workload->phases[0], 2.4, 2.5,
                                                    0.25, 1.0, 24, rng);
    benchmark::DoNotOptimize(counts.instructions);
  }
}
BENCHMARK(BM_CoreActivityGeneration);

void BM_GroundTruthEvaluation(benchmark::State& state) {
  const power::GroundTruthPower truth = power::GroundTruthPower::haswell_ep();
  power::SocketActivity activity;
  activity.duration_s = 0.25;
  activity.frequency_ghz = 2.4;
  activity.voltage = 1.0;
  activity.active_cores = 12;
  activity.counts.cycles = 12 * 2.4e9 * 0.25;
  activity.counts.instructions = 2 * activity.counts.cycles;
  activity.uops = 2.2 * activity.counts.cycles;
  for (auto _ : state) {
    benchmark::DoNotOptimize(truth.socket_input_watts(activity));
  }
}
BENCHMARK(BM_GroundTruthEvaluation);

void BM_SmallCampaign(benchmark::State& state) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig cfg = acquire::standard_campaign_config({2.4});
  cfg.workloads = {*workloads::find_workload("compute"),
                   *workloads::find_workload("swim")};
  cfg.scalable_thread_counts = {8, 24};
  for (auto _ : state) {
    const auto dataset = acquire::run_campaign(engine, cfg);
    benchmark::DoNotOptimize(dataset.size());
  }
}
BENCHMARK(BM_SmallCampaign)->Unit(benchmark::kMillisecond);

}  // namespace
