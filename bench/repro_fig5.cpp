// Figure 5 — Actual vs modeled average power, scenarios 2 and 3.
//
// Paper: scenario 2 shows systematic per-workload bias (md and nab
// consistently overestimated when training only on synthetic kernels);
// scenario 3 scatters symmetrically around the diagonal with absolute error
// growing with power (heteroscedastic residuals).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "regress/diagnostics.hpp"
#include "repro_common.hpp"

namespace {

void report(const pwx::core::ScenarioResult& scenario, const char* title) {
  using namespace pwx;
  std::printf("---- %s ----\n", title);

  std::puts("per-workload mean signed relative error (positive = overestimated):");
  TablePrinter table({"workload", "bias [%]", "direction"});
  for (const auto& [workload, bias] : scenario.workload_bias()) {
    table.row({workload, format_double(100.0 * bias, 1),
               bias > 0.02 ? "overestimated" : bias < -0.02 ? "underestimated" : "-"});
  }
  table.print(std::cout);

  // Heteroscedasticity: split the points into power terciles and compare
  // absolute errors.
  std::vector<double> fitted;
  std::vector<double> resid;
  for (const core::ScenarioPoint& point : scenario.points) {
    fitted.push_back(point.predicted_watts);
    resid.push_back(point.actual_watts - point.predicted_watts);
  }
  const double ratio = regress::variance_ratio_by_fitted(fitted, resid);
  std::printf("residual variance ratio (top vs bottom power tercile): %.2f\n",
              ratio);
  std::printf("MAPE: %.2f %%  points: %zu\n\n", scenario.mape,
              scenario.points.size());
}

}  // namespace

int main() {
  using namespace pwx;
  bench::print_header(
      "Figure 5: actual vs modeled average power (scenarios 2 and 3)",
      "5a: systematic per-workload bias under synthetic-only training "
      "(md, nab overestimated); 5b: symmetric scatter, absolute error grows "
      "with power");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  const auto s2 = core::scenario_synthetic_to_spec(*p.training, p.spec);
  const auto s3 = core::scenario_kfold_all(*p.training, p.spec, 10, bench::kCvSeed);

  report(s2, "Figure 5a: scenario 2 (train synthetic, validate SPEC)");
  report(s3, "Figure 5b: scenario 3 (10-fold CV over all experiments)");

  std::puts("scatter data (CSV) for plotting — scenario, workload, f, threads,");
  std::puts("actual_w, predicted_w:");
  CsvWriter csv(std::cout);
  csv.header({"scenario", "workload", "f_ghz", "threads", "actual_w", "predicted_w"});
  auto dump = [&](const core::ScenarioResult& s, const char* tag,
                  std::size_t stride) {
    for (std::size_t i = 0; i < s.points.size(); i += stride) {
      const core::ScenarioPoint& point = s.points[i];
      csv.row({tag, point.workload, format_double(point.frequency_ghz, 1),
               std::to_string(point.threads), format_double(point.actual_watts, 2),
               format_double(point.predicted_watts, 2)});
    }
  };
  dump(s2, "s2", 1);
  dump(s3, "s3", 7);  // sampled: the full set is in the returned points

  std::puts("\nshape check: scenario 2 exhibits per-workload systematic bias in\n"
            "both directions while scenario 3 is balanced; the residual variance\n"
            "ratio > 1 reproduces the paper's heteroscedasticity observation.");
  return 0;
}
