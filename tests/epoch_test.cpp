// Epoch-based model hot-swap: LayoutEpoch publication semantics, estimator
// and fleet adoption, cross-generation sample remapping, and the
// multi-threaded soak proving that readers never drop an estimate or emit
// NaN while hot swaps race concurrent ingestion.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "acquire/dataset.hpp"
#include "common/rng.hpp"
#include "core/epoch.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"

namespace pwx::core {
namespace {

using acquire::DataRow;
using acquire::Dataset;

const std::vector<pmc::Preset> kEventsA{pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC,
                                        pmc::Preset::BR_MSP};
const std::vector<pmc::Preset> kEventsB{pmc::Preset::TOT_CYC, pmc::Preset::BR_MSP};
const std::vector<pmc::Preset> kEventsC{pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS};
const std::vector<pmc::Preset> kAllEvents{pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC,
                                          pmc::Preset::BR_MSP, pmc::Preset::TOT_INS};

/// Synthetic Eq.1-representable model over the given events (fleet_test's
/// generator, parameterized so different generations are genuinely
/// different models).
PowerModel make_model(const std::vector<pmc::Preset>& events, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> coeffs;
  for (std::size_t i = 0; i < events.size(); ++i) {
    coeffs.push_back(rng.uniform(3.0, 25.0));
  }
  Dataset ds;
  for (std::size_t i = 0; i < 150; ++i) {
    DataRow row;
    row.workload = "w" + std::to_string(i % 6);
    row.phase = "main";
    row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    double power = 8.0 * v2f + 12.0 * row.avg_voltage + 6.0;
    for (std::size_t e = 0; e < events.size(); ++e) {
      const double rate = rng.uniform(0.1, 3.0);
      row.counter_rates[events[e]] = rate * row.frequency_ghz * 1e9;
      power += coeffs[e] * rate * v2f;
    }
    row.avg_power_watts = power + rng.normal(0.0, 0.3);
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  FeatureSpec spec;
  spec.events = events;
  return train_model(ds, spec);
}

/// A valid sample carrying every event any test model uses.
CounterSample union_sample(Rng& rng) {
  CounterSample sample;
  sample.elapsed_s = rng.uniform(0.05, 2.0);
  sample.frequency_ghz = rng.uniform(1.0, 3.5);
  sample.voltage = rng.uniform(0.7, 1.2);
  for (pmc::Preset p : kAllEvents) {
    sample.counts[p] = rng.uniform(0.0, 5e9);
  }
  return sample;
}

// --------------------------------------------------------- epoch semantics

TEST(LayoutEpoch, ConstructionPublishesGenerationOne) {
  LayoutEpoch epoch(make_model(kEventsA, 1));
  EXPECT_EQ(epoch.generation(), 1u);
  EXPECT_EQ(epoch.swap_count(), 0u);
  ASSERT_NE(epoch.current(), nullptr);
  EXPECT_EQ(epoch.current()->generation, 1u);
  EXPECT_EQ(epoch.current()->model.spec().events, kEventsA);
}

TEST(LayoutEpoch, PublishAdvancesGenerationAndRetainsHistory) {
  LayoutEpoch epoch(make_model(kEventsA, 1));
  const auto gen1 = epoch.current();
  EXPECT_EQ(epoch.publish(make_model(kEventsB, 2)), 2u);
  EXPECT_EQ(epoch.generation(), 2u);
  EXPECT_EQ(epoch.swap_count(), 1u);
  // Both generations stay reachable; the old publication stays usable.
  ASSERT_NE(epoch.at(1), nullptr);
  EXPECT_EQ(epoch.at(1), gen1);
  ASSERT_NE(epoch.at(2), nullptr);
  EXPECT_EQ(epoch.at(2), epoch.current());
  EXPECT_EQ(epoch.at(3), nullptr);
  EXPECT_EQ(epoch.at(0), nullptr);
  EXPECT_EQ(gen1->model.spec().events, kEventsA);
}

TEST(LayoutEpoch, HistoryRingEvictsOldGenerations) {
  LayoutEpoch epoch(make_model(kEventsA, 1));
  for (std::uint64_t i = 0; i < LayoutEpoch::kHistory + 1; ++i) {
    epoch.publish(make_model(i % 2 == 0 ? kEventsB : kEventsA, 10 + i));
  }
  const std::uint64_t latest = epoch.generation();
  EXPECT_EQ(latest, LayoutEpoch::kHistory + 2);
  EXPECT_EQ(epoch.at(1), nullptr);  // evicted
  for (std::uint64_t g = latest - LayoutEpoch::kHistory + 1; g <= latest; ++g) {
    ASSERT_NE(epoch.at(g), nullptr) << "generation " << g;
    EXPECT_EQ(epoch.at(g)->generation, g);
  }
}

TEST(LayoutEpoch, TryPublishRejectsStaleExpectation) {
  LayoutEpoch epoch(make_model(kEventsA, 1));
  // A slower retrainer observed generation 1, but another publish landed.
  epoch.publish(make_model(kEventsB, 2));
  const auto rejected = epoch.try_publish(make_model(kEventsA, 3), 1);
  EXPECT_FALSE(rejected.has_value());
  EXPECT_EQ(epoch.generation(), 2u);  // nothing was published
  EXPECT_EQ(epoch.current()->model.spec().events, kEventsB);

  const auto accepted = epoch.try_publish(make_model(kEventsA, 3), 2);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(*accepted, 3u);
  EXPECT_EQ(epoch.generation(), 3u);
}

// ----------------------------------------------------- estimator adoption

TEST(EpochEstimator, AdoptsPublishedModelOnNextEstimate) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  OnlineEstimator serving(epoch);
  PowerModel model_b = make_model(kEventsB, 2);
  OnlineEstimator pinned_a(make_model(kEventsA, 1));
  OnlineEstimator pinned_b(model_b);

  Rng rng(7);
  const CounterSample sample = union_sample(rng);
  EXPECT_DOUBLE_EQ(serving.estimate(sample), pinned_a.estimate(sample));
  EXPECT_EQ(serving.generation(), 1u);

  epoch->publish(model_b);
  // Adoption happens on the next call, lock-free; the result must be
  // bit-identical to an estimator that always had model B.
  EXPECT_DOUBLE_EQ(serving.estimate(sample), pinned_b.estimate(sample));
  EXPECT_EQ(serving.generation(), 2u);
  EXPECT_EQ(serving.required_events(), kEventsB);
}

TEST(EpochEstimator, PinnedEstimatorNeverAdopts) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  OnlineEstimator pinned(make_model(kEventsA, 1));
  Rng rng(8);
  const CounterSample sample = union_sample(rng);
  const double before = pinned.estimate(sample);
  epoch->publish(make_model(kEventsB, 2));
  EXPECT_DOUBLE_EQ(pinned.estimate(sample), before);
  EXPECT_EQ(pinned.generation(), 1u);
}

TEST(EpochEstimator, GuardedStateSurvivesSwap) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  OnlineEstimator serving(epoch);
  Rng rng(9);
  const CounterSample good = union_sample(rng);
  const double held = serving.estimate_guarded(good);
  EXPECT_EQ(serving.health(), HealthState::Ok);

  CounterSample bad = good;
  bad.elapsed_s = 0.0;
  EXPECT_DOUBLE_EQ(serving.estimate_guarded(bad), held);
  EXPECT_EQ(serving.health(), HealthState::Degraded);

  // The swap must not reset the degradation bookkeeping: the stream is
  // continuous even though the model changed.
  epoch->publish(make_model(kEventsB, 2));
  EXPECT_DOUBLE_EQ(serving.estimate_guarded(bad), held);
  EXPECT_EQ(serving.health(), HealthState::Degraded);
  EXPECT_EQ(serving.consecutive_invalid(), 2u);
  EXPECT_EQ(serving.generation(), 2u);

  // A good sample on the new model restores OK.
  const double recovered = serving.estimate_guarded(good);
  EXPECT_TRUE(std::isfinite(recovered));
  EXPECT_EQ(serving.health(), HealthState::Ok);
}

// --------------------------------------------------------- fleet adoption

TEST(EpochFleet, ShardsAdoptPublishedModel) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  PowerModel model_b = make_model(kEventsB, 2);
  FleetEstimator fleet(epoch);
  FleetEstimator pinned_b(model_b);
  const NodeId node = fleet.intern("node-0");
  const NodeId node_b = pinned_b.intern("node-0");

  Rng rng(11);
  const CounterSample sample = union_sample(rng);
  fleet.ingest(node, sample, 1.0);
  EXPECT_EQ(fleet.generation(), 1u);

  epoch->publish(model_b);
  EXPECT_EQ(fleet.generation(), 2u);  // publication() follows the epoch
  const double swapped = fleet.ingest(node, sample, 2.0);
  const double expected = pinned_b.ingest(node_b, sample, 2.0);
  EXPECT_DOUBLE_EQ(swapped, expected);
}

TEST(EpochFleet, RemapsCrossGenerationDenseSamples) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  PowerModel model_b = make_model(kEventsB, 2);  // kEventsB subset of kEventsA
  FleetEstimator fleet(epoch);
  FleetEstimator pinned_b(model_b);
  const NodeId node = fleet.intern("node-0");
  const NodeId node_b = pinned_b.intern("node-0");

  Rng rng(12);
  const CounterSample map_sample = union_sample(rng);
  // The sample was built against generation 1's layout just before the swap.
  NodeSample in_flight;
  in_flight.node = node;
  in_flight.now_s = 1.0;
  in_flight.sample = epoch->current()->layout.to_dense(map_sample);
  in_flight.generation = 1;

  epoch->publish(model_b);
  ASSERT_EQ(fleet.ingest_batch({&in_flight, 1}), 1u);

  // Remapping must land exactly where converting the original map sample
  // against model B would: kEventsB's counts all exist in the old layout.
  const double expected = pinned_b.ingest(node_b, map_sample, 1.0);
  EXPECT_DOUBLE_EQ(*fleet.node_estimate(node), expected);
  EXPECT_EQ(*fleet.node_health(node), HealthState::Ok);
}

TEST(EpochFleet, RemapWithMissingEventDegradesInsteadOfNaN) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  FleetEstimator fleet(epoch);
  const NodeId node = fleet.intern("node-0");

  Rng rng(13);
  const CounterSample map_sample = union_sample(rng);
  const double good = fleet.ingest(node, map_sample, 1.0);
  EXPECT_TRUE(std::isfinite(good));

  NodeSample in_flight;
  in_flight.node = node;
  in_flight.now_s = 2.0;
  in_flight.sample = epoch->current()->layout.to_dense(map_sample);
  in_flight.generation = 1;

  // kEventsC needs TOT_INS, which generation 1's layout never recorded: the
  // remap cannot fill that slot and the guarded path must hold, not NaN.
  epoch->publish(make_model(kEventsC, 3));
  ASSERT_EQ(fleet.ingest_batch({&in_flight, 1}), 1u);
  ASSERT_TRUE(fleet.node_estimate(node).has_value());
  EXPECT_DOUBLE_EQ(*fleet.node_estimate(node), good);  // held estimate
  EXPECT_EQ(*fleet.node_health(node), HealthState::Degraded);
}

TEST(EpochFleet, EvictedGenerationSampleDegradesInsteadOfNaN) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  FleetEstimator fleet(epoch);
  const NodeId node = fleet.intern("node-0");
  Rng rng(14);
  const CounterSample map_sample = union_sample(rng);
  const double good = fleet.ingest(node, map_sample, 1.0);

  NodeSample ancient;
  ancient.node = node;
  ancient.now_s = 2.0;
  ancient.sample = epoch->current()->layout.to_dense(map_sample);
  ancient.generation = 1;

  for (std::uint64_t i = 0; i < LayoutEpoch::kHistory + 1; ++i) {
    epoch->publish(make_model(kEventsA, 20 + i));
  }
  ASSERT_EQ(epoch->at(1), nullptr);
  ASSERT_EQ(fleet.ingest_batch({&ancient, 1}), 1u);
  EXPECT_DOUBLE_EQ(*fleet.node_estimate(node), good);
  EXPECT_EQ(*fleet.node_health(node), HealthState::Degraded);
}

// ------------------------------------------------------------------- soak

// Readers estimate continuously while a swapper publishes new models. No
// estimate may be dropped, NaN, or outside the guard range, and each
// reader's observed generation must be monotone non-decreasing.
TEST(EpochSoak, ReadersNeverSeeNaNWhileSwapsRace) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kEstimatesPerReader = 4000;
  constexpr std::size_t kSwaps = 40;

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      OnlineEstimator estimator(epoch);
      const EstimatorGuards& guards = estimator.guards();
      Rng rng(100 + r);
      std::uint64_t last_generation = 0;
      for (std::size_t i = 0; i < kEstimatesPerReader; ++i) {
        const double watts = estimator.estimate_guarded(union_sample(rng));
        const std::uint64_t generation = estimator.generation();
        if (!std::isfinite(watts) || watts < guards.min_watts ||
            watts > guards.max_watts || generation < last_generation) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        last_generation = generation;
      }
    });
  }
  std::thread swapper([&] {
    for (std::size_t s = 0; s < kSwaps; ++s) {
      epoch->publish(
          make_model(s % 2 == 0 ? kEventsB : kEventsA, 1000 + s));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (std::thread& t : readers) {
    t.join();
  }
  swapper.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(epoch->generation(), 1 + kSwaps);
}

// Fleet ingestion racing hot swaps: concurrent per-node map-based ingest
// plus batch ingest while models are republished. Every node must end up
// with a finite estimate and the aggregate must be finite and complete.
TEST(EpochSoak, FleetIngestionRacesSwapsWithoutDroppingNodes) {
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));
  FleetOptions options;
  options.shard_count = 8;
  FleetEstimator fleet(epoch, 0.0, 1e9, options);

  constexpr std::size_t kIngesters = 4;
  constexpr std::size_t kNodesPerThread = 8;
  constexpr std::size_t kRounds = 400;
  constexpr std::size_t kSwaps = 30;

  std::vector<std::vector<NodeId>> ids(kIngesters);
  for (std::size_t t = 0; t < kIngesters; ++t) {
    for (std::size_t n = 0; n < kNodesPerThread; ++n) {
      ids[t].push_back(fleet.intern("node-" + std::to_string(t) + "-" +
                                    std::to_string(n)));
    }
  }

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> ingesters;
  for (std::size_t t = 0; t < kIngesters; ++t) {
    ingesters.emplace_back([&, t] {
      Rng rng(500 + t);
      for (std::size_t round = 0; round < kRounds; ++round) {
        const double now_s = static_cast<double>(round + 1);
        for (const NodeId id : ids[t]) {
          const double watts = fleet.ingest(id, union_sample(rng), now_s);
          if (!std::isfinite(watts)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread swapper([&] {
    for (std::size_t s = 0; s < kSwaps; ++s) {
      epoch->publish(make_model(s % 2 == 0 ? kEventsB : kEventsA, 2000 + s));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  for (std::thread& t : ingesters) {
    t.join();
  }
  swapper.join();

  EXPECT_EQ(failures.load(), 0u);
  const FleetSnapshot snapshot = fleet.snapshot(static_cast<double>(kRounds));
  EXPECT_EQ(snapshot.nodes_reporting, kIngesters * kNodesPerThread);
  EXPECT_EQ(snapshot.nodes_failed, 0u);
  EXPECT_TRUE(std::isfinite(snapshot.total_watts));
  EXPECT_GT(snapshot.total_watts, 0.0);
}

// Barrier-synchronized swap schedule: with swaps pinned to known sample
// boundaries, the concurrent run must be bit-identical to a serial replay of
// the same schedule — hot swapping adds no nondeterminism of its own.
TEST(EpochSoak, BarrieredSwapScheduleMatchesSerialReplayBitExactly) {
  constexpr std::size_t kPhases = 6;
  constexpr std::size_t kSamplesPerPhase = 50;

  // Pre-generate the deterministic inputs and swap schedule.
  std::vector<CounterSample> samples;
  {
    Rng rng(321);
    for (std::size_t i = 0; i < kPhases * kSamplesPerPhase; ++i) {
      samples.push_back(union_sample(rng));
    }
  }
  const auto model_for_phase = [](std::size_t phase) {
    return make_model(phase % 2 == 0 ? kEventsA : kEventsB, 4000 + phase);
  };

  // Serial replay: estimate each phase's samples, then swap.
  std::vector<double> serial;
  {
    auto epoch = std::make_shared<LayoutEpoch>(model_for_phase(0));
    OnlineEstimator estimator(epoch);
    for (std::size_t phase = 0; phase < kPhases; ++phase) {
      if (phase > 0) {
        epoch->publish(model_for_phase(phase));
      }
      for (std::size_t i = 0; i < kSamplesPerPhase; ++i) {
        serial.push_back(
            estimator.estimate_guarded(samples[phase * kSamplesPerPhase + i]));
      }
    }
  }

  // Concurrent run: a reader thread and a swapper thread synchronized by a
  // barrier at every phase boundary.
  std::vector<double> concurrent(serial.size());
  {
    auto epoch = std::make_shared<LayoutEpoch>(model_for_phase(0));
    std::barrier<> phase_barrier(2);
    std::thread reader([&] {
      OnlineEstimator estimator(epoch);
      for (std::size_t phase = 0; phase < kPhases; ++phase) {
        phase_barrier.arrive_and_wait();  // swapper published phase's model
        for (std::size_t i = 0; i < kSamplesPerPhase; ++i) {
          const std::size_t index = phase * kSamplesPerPhase + i;
          concurrent[index] = estimator.estimate_guarded(samples[index]);
        }
        phase_barrier.arrive_and_wait();  // phase fully estimated
      }
    });
    std::thread swapper([&] {
      for (std::size_t phase = 0; phase < kPhases; ++phase) {
        if (phase > 0) {
          epoch->publish(model_for_phase(phase));
        }
        phase_barrier.arrive_and_wait();
        phase_barrier.arrive_and_wait();
      }
    });
    reader.join();
    swapper.join();
  }

  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(concurrent[i], serial[i]) << "sample " << i;
  }
}

}  // namespace
}  // namespace pwx::core
