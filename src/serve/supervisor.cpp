#include "serve/supervisor.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pwx::serve {

namespace {

struct SupervisorMetrics {
  obs::Counter& refreshes = obs::registry().counter(
      "serve.supervisor_refreshes", "retrains launched by drift triggers");
  obs::Counter& publishes = obs::registry().counter(
      "serve.supervisor_publishes", "drift-triggered retrains that published");
  obs::Counter& suppressed = obs::registry().counter(
      "serve.supervisor_suppressed",
      "retrains suppressed by the consecutive-reject backoff");
  obs::Gauge& generation = obs::registry().gauge(
      "serve.generation", "model generation currently served");
};

SupervisorMetrics& supervisor_metrics() {
  static SupervisorMetrics metrics;
  return metrics;
}

}  // namespace

Supervisor::Supervisor(std::shared_ptr<core::LayoutEpoch> epoch,
                       SupervisorConfig config)
    : epoch_(std::move(epoch)),
      config_(std::move(config)),
      monitor_(config_.drift) {
  PWX_REQUIRE(epoch_ != nullptr, "supervisor needs a layout epoch");
  supervisor_metrics().generation.set(
      static_cast<double>(epoch_->generation()));
}

std::optional<RefreshReport> Supervisor::observe(double estimate_watts,
                                                 double reference_watts) {
  monitor_.observe(estimate_watts, reference_watts);
  return maybe_refresh();
}

void Supervisor::observe_health(bool invalid, bool clamped) {
  monitor_.observe_health(invalid, clamped);
}

std::optional<RefreshReport> Supervisor::maybe_refresh() {
  if (!monitor_.retrain_due()) {
    return std::nullopt;
  }
  if (consecutive_rejects_ >= config_.max_consecutive_rejects) {
    // The trigger stays raised but no retrain launches: a corpus that keeps
    // producing rejected candidates must not melt into a refresh hot loop.
    supervisor_metrics().suppressed.add();
    monitor_.acknowledge();
    return std::nullopt;
  }
  RefreshReport report = refresh_now();
  monitor_.acknowledge();
  return report;
}

RefreshReport Supervisor::refresh_now() {
  RefreshConfig refresh = config_.refresh;
  refresh.attempt = refreshes_run_;
  ++refreshes_run_;
  supervisor_metrics().refreshes.add();

  RefreshReport report = refresh_model(*epoch_, refresh);
  if (report.published()) {
    ++refreshes_published_;
    consecutive_rejects_ = 0;
    SupervisorMetrics& metrics = supervisor_metrics();
    metrics.publishes.add();
    metrics.generation.set(static_cast<double>(report.published_generation));
  } else {
    ++consecutive_rejects_;
  }
  history_.push_back(report);
  return report;
}

}  // namespace pwx::serve
