#include "trace/profile_campaign.hpp"

#include <cstring>
#include <exception>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "trace/mapped.hpp"
#include "trace/serialize.hpp"

namespace pwx::trace {

namespace {

/// Merge key: workload, phase, frequency bit pattern, thread count. The
/// frequency is keyed by its exact bit pattern (not a printed form), matching
/// the == comparison merge_profiles enforces.
std::string merge_key(const PhaseProfile& profile) {
  std::string key;
  key.reserve(profile.workload.size() + profile.phase.size() + 32);
  key += profile.workload;
  key += '\0';
  key += profile.phase;
  key += '\0';
  char bits[sizeof(double)];
  std::memcpy(bits, &profile.frequency_ghz, sizeof bits);
  key.append(bits, sizeof bits);
  key += '\0';
  key += std::to_string(profile.threads);
  return key;
}

}  // namespace

std::vector<PhaseProfile> ProfileCampaign::run() const {
  // Stage 1: read + profile each file independently. Results land in their
  // input slot, so the aggregation below never depends on scheduling.
  std::vector<std::vector<PhaseProfile>> per_file(paths_.size());
  std::vector<std::exception_ptr> failures(paths_.size());

  const bool parallel = options_.parallel && paths_.size() > 1;
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    // Exceptions must not escape the OpenMP region; they are captured per
    // slot and rethrown deterministically afterwards.
    try {
      // One root span per file: on OpenMP workers each lands in that
      // thread's ring, so a traced campaign shows the real parallel shape.
      PWX_SPAN("ingest.file");
      obs::span_attr("path", paths_[i]);
      if (options_.mmap) {
        const MappedTraceFile file =
            MappedTraceFile::open(paths_[i], {.verify_checksum = options_.verify_checksum});
        per_file[i] = build_phase_profiles(file.view());
      } else {
        per_file[i] = build_phase_profiles(read_trace_file(paths_[i]));
      }
    } catch (...) {
      failures[i] = std::current_exception();
    }
  }

  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (!failures[i]) {
      continue;
    }
    try {
      std::rethrow_exception(failures[i]);
    } catch (const IoError& e) {
      throw e.with_context("trace campaign: '" + paths_[i] + "'");
    } catch (const Error& e) {
      throw e.with_context("trace campaign: '" + paths_[i] + "'");
    }
  }

  // Stage 2: deterministic ordered merge. Keys appear in the output in the
  // order they first occur walking files in add order.
  if (!options_.merge) {
    std::vector<PhaseProfile> out;
    for (auto& profiles : per_file) {
      for (auto& profile : profiles) {
        out.push_back(std::move(profile));
      }
    }
    return out;
  }
  return merge_first_appearance(std::move(per_file));
}

std::vector<PhaseProfile> merge_first_appearance(
    std::vector<std::vector<PhaseProfile>> per_file) {
  PWX_SPAN("ingest.merge");
  std::vector<std::vector<PhaseProfile>> groups;
  std::unordered_map<std::string, std::size_t> group_index;
  for (auto& profiles : per_file) {
    for (auto& profile : profiles) {
      const auto [it, inserted] =
          group_index.emplace(merge_key(profile), groups.size());
      if (inserted) {
        groups.emplace_back();
      }
      groups[it->second].push_back(std::move(profile));
    }
  }

  std::vector<PhaseProfile> out;
  out.reserve(groups.size());
  for (const auto& group : groups) {
    out.push_back(merge_profiles(group));
  }
  return out;
}

std::vector<PhaseProfile> profile_trace_files(const std::vector<std::string>& paths,
                                              ProfileCampaignOptions options) {
  ProfileCampaign campaign(options);
  campaign.add_files(paths);
  return campaign.run();
}

}  // namespace pwx::trace
