
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/ground_truth.cpp" "src/power/CMakeFiles/pwx_power.dir/ground_truth.cpp.o" "gcc" "src/power/CMakeFiles/pwx_power.dir/ground_truth.cpp.o.d"
  "/root/repo/src/power/sensor.cpp" "src/power/CMakeFiles/pwx_power.dir/sensor.cpp.o" "gcc" "src/power/CMakeFiles/pwx_power.dir/sensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pwx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/pwx_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pwx_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
