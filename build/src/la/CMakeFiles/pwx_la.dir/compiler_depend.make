# Empty compiler generated dependencies file for pwx_la.
# This may be replaced when dependencies are built.
