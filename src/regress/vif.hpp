// Variance Inflation Factor (paper Section III-B).
//
// VIF_j = 1 / (1 - R²_j) where R²_j is from regressing predictor j on the
// remaining predictors (with intercept). The paper uses *mean* VIF over the
// selected events as the stability criterion; values near 1 mean independent
// predictors, values above ~10 indicate multicollinearity problems.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::regress {

/// VIF of column j of x against the other columns.
/// Returns +inf when predictor j is perfectly explained by the others.
double vif_for_column(const la::Matrix& x, std::size_t j);

/// VIF for every column.
std::vector<double> vif_all(const la::Matrix& x);

/// Mean VIF over all columns (the paper's stability metric). Requires at
/// least two columns; a single predictor has no VIF ("n/a" in Table I).
double mean_vif(const la::Matrix& x);

}  // namespace pwx::regress
