// Performance of the OTF2-lite trace layer: building traces through the
// metric plugins, binary serialization, and phase-profile generation.
#include <benchmark/benchmark.h>

#include <sstream>

#include "sim/engine.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwx;

sim::RunResult benchmark_run() {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.05;  // fine-grained: ~800 intervals for md
  rc.duration_scale = 1.0;
  return engine.run(*workloads::find_workload("md"), rc);
}

const sim::RunResult& shared_run() {
  static const sim::RunResult run = benchmark_run();
  return run;
}

std::vector<pmc::Preset> four_events() {
  return {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS, pmc::Preset::PRF_DM,
          pmc::Preset::BR_MSP};
}

void BM_BuildTrace(benchmark::State& state) {
  const auto& run = shared_run();
  for (auto _ : state) {
    const trace::Trace t = trace::build_standard_trace(run, four_events());
    benchmark::DoNotOptimize(t.events().size());
  }
  state.counters["events"] = benchmark::Counter(static_cast<double>(
      trace::build_standard_trace(run, four_events()).events().size()));
}
BENCHMARK(BM_BuildTrace)->Unit(benchmark::kMillisecond);

void BM_SerializeTrace(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  for (auto _ : state) {
    std::ostringstream os;
    trace::write_trace(t, os);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_SerializeTrace)->Unit(benchmark::kMillisecond);

void BM_DeserializeTrace(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  std::ostringstream os;
  trace::write_trace(t, os);
  const std::string data = os.str();
  for (auto _ : state) {
    std::istringstream is(data);
    const trace::Trace loaded = trace::read_trace(is);
    benchmark::DoNotOptimize(loaded.events().size());
  }
  state.counters["bytes"] = benchmark::Counter(static_cast<double>(data.size()));
}
BENCHMARK(BM_DeserializeTrace)->Unit(benchmark::kMillisecond);

void BM_PhaseProfiles(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  for (auto _ : state) {
    const auto profiles = trace::build_phase_profiles(t);
    benchmark::DoNotOptimize(profiles.size());
  }
}
BENCHMARK(BM_PhaseProfiles)->Unit(benchmark::kMillisecond);

}  // namespace
