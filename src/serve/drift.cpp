#include "serve/drift.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace pwx::serve {

namespace {

struct DriftMetrics {
  obs::Counter& windows = obs::registry().counter(
      "serve.drift_windows", "drift windows closed");
  obs::Counter& breaches = obs::registry().counter(
      "serve.drift_breaches", "drift windows that breached a threshold");
  obs::Counter& triggers = obs::registry().counter(
      "serve.drift_triggers", "retrain triggers raised");
  obs::Gauge& mape = obs::registry().gauge(
      "serve.window_mape_pct", "MAPE of the last closed drift window");
  obs::Gauge& bias = obs::registry().gauge(
      "serve.window_bias_watts", "signed bias of the last closed drift window");
  obs::Gauge& streak = obs::registry().gauge(
      "serve.breach_streak", "consecutive breaching drift windows");
};

DriftMetrics& drift_metrics() {
  static DriftMetrics metrics;
  return metrics;
}

}  // namespace

DriftMonitor::DriftMonitor(DriftConfig config) : config_(config) {
  PWX_REQUIRE(config_.window_size > 0, "drift window size must be positive");
  PWX_REQUIRE(config_.trigger_windows > 0,
              "drift trigger_windows must be positive");
  PWX_REQUIRE(config_.max_mape_pct > 0.0, "drift MAPE threshold must be positive");
  PWX_REQUIRE(config_.max_abs_bias_watts > 0.0,
              "drift bias threshold must be positive");
  PWX_REQUIRE(config_.max_invalid_fraction >= 0.0 &&
                  config_.max_invalid_fraction <= 1.0,
              "drift invalid-fraction threshold must be in [0,1]");
}

std::optional<WindowStats> DriftMonitor::observe(double estimate_watts,
                                                 double reference_watts) {
  ++residuals_;
  const bool usable = std::isfinite(estimate_watts) &&
                      std::isfinite(reference_watts) &&
                      reference_watts > min_reference_watts;
  if (usable) {
    ++usable_residuals_;
    abs_pct_error_sum_ +=
        std::fabs(estimate_watts - reference_watts) / reference_watts;
    signed_error_sum_ += estimate_watts - reference_watts;
  } else {
    // A residual we cannot score is itself a health problem.
    ++health_events_;
    ++invalid_events_;
  }
  if (residuals_ >= config_.window_size) {
    return finish_window();
  }
  return std::nullopt;
}

void DriftMonitor::observe_health(bool invalid, bool clamped) {
  ++health_events_;
  if (invalid) {
    ++invalid_events_;
  }
  if (clamped) {
    ++clamped_events_;
  }
}

std::optional<WindowStats> DriftMonitor::close_window() {
  if (residuals_ == 0 && health_events_ == 0) {
    return std::nullopt;
  }
  return finish_window();
}

std::optional<WindowStats> DriftMonitor::finish_window() {
  PWX_SPAN("drift.window");
  WindowStats stats;
  stats.index = windows_closed_;
  stats.residuals = residuals_;
  stats.health_events = health_events_;
  stats.mape_pct = usable_residuals_ > 0
                       ? 100.0 * abs_pct_error_sum_ /
                             static_cast<double>(usable_residuals_)
                       : 0.0;
  stats.bias_watts = usable_residuals_ > 0
                         ? signed_error_sum_ /
                               static_cast<double>(usable_residuals_)
                         : 0.0;
  stats.invalid_fraction =
      health_events_ > 0 ? static_cast<double>(invalid_events_) /
                               static_cast<double>(health_events_)
                         : 0.0;
  stats.clamp_fraction =
      health_events_ > 0 ? static_cast<double>(clamped_events_) /
                               static_cast<double>(health_events_)
                         : 0.0;
  stats.breached = stats.mape_pct > config_.max_mape_pct ||
                   std::fabs(stats.bias_watts) > config_.max_abs_bias_watts ||
                   stats.invalid_fraction > config_.max_invalid_fraction;

  residuals_ = 0;
  usable_residuals_ = 0;
  abs_pct_error_sum_ = 0.0;
  signed_error_sum_ = 0.0;
  health_events_ = 0;
  invalid_events_ = 0;
  clamped_events_ = 0;

  ++windows_closed_;
  const bool telemetry = obs::enabled();
  DriftMetrics& metrics = drift_metrics();
  if (telemetry) {
    metrics.windows.add_unguarded();
    metrics.mape.set_unguarded(stats.mape_pct);
    metrics.bias.set_unguarded(stats.bias_watts);
  }

  if (stats.breached) {
    ++windows_breached_;
    if (telemetry) {
      metrics.breaches.add_unguarded();
    }
    if (rearm_remaining_ == 0) {
      ++consecutive_breaches_;
      if (!triggered_ && consecutive_breaches_ >= config_.trigger_windows) {
        triggered_ = true;
        ++triggers_raised_;
        if (telemetry) {
          metrics.triggers.add_unguarded();
        }
      }
    }
    // A breach during rearm neither counts toward a new trigger nor resets
    // the rearm countdown: the freshly published model gets its full grace
    // period of healthy windows before it can be declared drifted again.
  } else {
    consecutive_breaches_ = 0;
    if (rearm_remaining_ > 0) {
      --rearm_remaining_;
    }
  }
  if (telemetry) {
    metrics.streak.set_unguarded(static_cast<double>(consecutive_breaches_));
  }

  obs::span_attr("mape_pct", stats.mape_pct);
  obs::span_attr("breached", stats.breached ? "true" : "false");
  last_window_ = stats;
  return stats;
}

void DriftMonitor::acknowledge() {
  triggered_ = false;
  consecutive_breaches_ = 0;
  rearm_remaining_ = config_.rearm_windows;
}

void DriftMonitor::reset() {
  const DriftConfig config = config_;
  *this = DriftMonitor(config);
}

}  // namespace pwx::serve
