#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pwx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[pwx " << level_name(level) << "] " << message << '\n';
}

}  // namespace pwx
