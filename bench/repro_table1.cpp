// Table I — Selected performance counters based on all workloads.
//
// Paper: Algorithm 1 on all roco2 + SPEC workloads at 2400 MHz selects
// PRF_DM, TOT_CYC, TLB_IM, FUL_CCY, STL_ICY, BR_MSP with stepwise R² rising
// 0.735 → 0.984 and mean VIF staying below 1.79; a hypothetical 7th counter
// (CA_SNP) would raise R² to 0.989 but push the mean VIF to 26.42 with no
// transformation available.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header(
      "Table I: selected performance counters (all workloads, 2.4 GHz)",
      "6 counters, R2 0.735->0.984, mean VIF <= 1.787; 7th counter would "
      "explode VIF to 26.42 (CA_SNP dilemma)");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();

  std::puts("paper reference (Table I):");
  TablePrinter ref({"Counter", "R2", "Adj.R2", "VIF"});
  ref.row({"PRF_DM", "0.735", "0.730", "n/a"});
  ref.row({"TOT_CYC", "0.897", "0.893", "1.062"});
  ref.row({"TLB_IM", "0.933", "0.930", "1.405"});
  ref.row({"FUL_CCY", "0.962", "0.959", "1.472"});
  ref.row({"STL_ICY", "0.979", "0.976", "1.573"});
  ref.row({"BR_MSP", "0.984", "0.982", "1.787"});
  ref.print(std::cout);

  std::puts("\nthis reproduction, Algorithm 1 with the stage-2 mean-VIF veto\n"
            "(the paper's 'do not select collinear events' decision, bound 8):");
  TablePrinter ours({"Counter", "R2", "Adj.R2", "VIF"});
  for (const core::SelectionStep& step : p.vetoed.steps) {
    ours.row({std::string(pmc::preset_name(step.event)),
              format_double(step.r_squared, 3), format_double(step.adj_r_squared, 3),
              bench::vif_cell(step.mean_vif)});
  }
  ours.print(std::cout);

  std::puts("\nunconstrained Algorithm 1 (stage 1 only) — reproducing the VIF\n"
            "explosion the paper reports for the 7th counter:");
  TablePrinter raw({"Counter", "R2", "Adj.R2", "VIF"});
  for (const core::SelectionStep& step : p.unconstrained.steps) {
    raw.row({std::string(pmc::preset_name(step.event)),
             format_double(step.r_squared, 3), format_double(step.adj_r_squared, 3),
             bench::vif_cell(step.mean_vif)});
  }
  raw.print(std::cout);

  std::puts("\nshape check: stepwise R2 is monotone with diminishing gains; the\n"
            "vetoed six stay low-VIF while the unconstrained run shows the\n"
            "collinearity blow-up the paper could not transform away.");
  return 0;
}
