#include "trace/columns.hpp"

#include "common/error.hpp"

namespace pwx::trace {

std::uint32_t StringTable::intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<std::uint32_t> StringTable::find(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& StringTable::at(std::uint32_t id) const {
  PWX_REQUIRE(id < names_.size(), "string table id ", id, " out of range (have ",
              names_.size(), ")");
  return names_[id];
}

void EventColumns::reserve(std::size_t n) {
  times.reserve(n);
  kinds.reserve(n);
  ids.reserve(n);
  values.reserve(n);
}

void EventColumns::clear() {
  times.clear();
  kinds.clear();
  ids.clear();
  values.clear();
}

Event EventColumns::make_event(std::size_t i) const {
  PWX_REQUIRE(i < size(), "event index ", i, " out of range (have ", size(), ")");
  switch (static_cast<EventKind>(kinds[i])) {
    case EventKind::Enter:
      return RegionEnter{times[i], regions.at(ids[i])};
    case EventKind::Exit:
      return RegionExit{times[i], regions.at(ids[i])};
    case EventKind::Metric:
      break;
  }
  return MetricEvent{times[i], ids[i], values[i]};
}

}  // namespace pwx::trace
