# Empty dependencies file for perf_estimator.
# This may be replaced when dependencies are built.
