#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pwx::stats {

double mean(std::span<const double> values) {
  PWX_REQUIRE(!values.empty(), "mean of empty range");
  return kahan_sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  PWX_REQUIRE(values.size() >= 2, "sample variance needs >= 2 values, got ",
              values.size());
  const double m = mean(values);
  double sum = 0.0;
  for (double v : values) {
    sum += (v - m) * (v - m);
  }
  return sum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double population_variance(std::span<const double> values) {
  PWX_REQUIRE(!values.empty(), "population variance of empty range");
  const double m = mean(values);
  double sum = 0.0;
  for (double v : values) {
    sum += (v - m) * (v - m);
  }
  return sum / static_cast<double>(values.size());
}

double min(std::span<const double> values) {
  PWX_REQUIRE(!values.empty(), "min of empty range");
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  PWX_REQUIRE(!values.empty(), "max of empty range");
  return *std::max_element(values.begin(), values.end());
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double quantile(std::span<const double> values, double q) {
  PWX_REQUIRE(!values.empty(), "quantile of empty range");
  PWX_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1], got ", q);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double kahan_sum(std::span<const double> values) {
  double sum = 0.0;
  double comp = 0.0;
  for (double v : values) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  s.min = min(values);
  s.max = max(values);
  s.q25 = quantile(values, 0.25);
  s.median = quantile(values, 0.5);
  s.q75 = quantile(values, 0.75);
  s.mean = mean(values);
  s.stddev = values.size() >= 2 ? stddev(values) : 0.0;
  return s;
}

}  // namespace pwx::stats
