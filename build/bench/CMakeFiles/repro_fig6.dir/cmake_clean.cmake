file(REMOVE_RECURSE
  "CMakeFiles/repro_fig6.dir/repro_fig6.cpp.o"
  "CMakeFiles/repro_fig6.dir/repro_fig6.cpp.o.d"
  "repro_fig6"
  "repro_fig6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
