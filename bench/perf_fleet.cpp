// Performance of the fleet-scale deployment path: per-sample ingest
// throughput and snapshot latency of the FleetEstimator, plus the dense
// single-sample estimate. At datacenter scale the per-sample budget is a
// handful of FMAs, so ingest and snapshot costs are the numbers that decide
// how many nodes one aggregator process can serve.
//
// BM_FleetIngest/N ingests one sample per node for N nodes (one "round" of
// fleet telemetry); BM_FleetSnapshot aggregates a 100k-node fleet. The
// checked-in perf_baseline.json entries were captured on the map-based
// pre-optimization FleetEstimator; tools/bench_compare.py (bench_fleet_gate
// target) holds the current code to >=5x on ingest/100k and >=10x on
// snapshot.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "acquire/dataset.hpp"
#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace pwx;

// A small synthetic-trained 6-event model: the bench measures the serving
// path, not training, so the training set just needs full rank.
const core::PowerModel& fleet_model() {
  static const core::PowerModel model = [] {
    const std::vector<pmc::Preset> events{
        pmc::Preset::TOT_INS, pmc::Preset::L2_TCM,  pmc::Preset::BR_MSP,
        pmc::Preset::RES_STL, pmc::Preset::FP_INS,  pmc::Preset::L3_TCM,
    };
    Rng rng(0xF1EE7);
    acquire::Dataset ds;
    for (std::size_t i = 0; i < 64; ++i) {
      acquire::DataRow row;
      row.workload = "synthetic";
      row.phase = "p" + std::to_string(i);
      row.frequency_ghz = 2.0 + 0.2 * static_cast<double>(i % 4);
      row.avg_voltage = 0.9 + 0.05 * static_cast<double>(i % 3);
      row.elapsed_s = 1.0;
      double power = 60.0;
      for (std::size_t e = 0; e < events.size(); ++e) {
        const double rate = (1.0 + rng.uniform()) * 1e8 * static_cast<double>(e + 1);
        row.counter_rates[events[e]] = rate;
        power += rate * 1e-8 * (0.5 + 0.1 * static_cast<double>(e));
      }
      row.avg_power_watts = power + rng.uniform();
      ds.append(row);
    }
    core::FeatureSpec spec;
    spec.events = events;
    return core::train_model(ds, spec);
  }();
  return model;
}

core::CounterSample sample_for_node(std::uint64_t node) {
  core::CounterSample sample;
  sample.elapsed_s = 0.25;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.95 + 0.0001 * static_cast<double>(node % 512);
  double scale = 0.5 + 0.001 * static_cast<double>(node % 1024);
  for (pmc::Preset p : fleet_model().spec().events) {
    sample.counts[p] = 2.5e7 * scale;
    scale *= 1.7;
  }
  return sample;
}

// One telemetry round via the batch API: every node of an N-node fleet
// reports one sample. Node names are interned once at setup (as a deployment
// would at node discovery); the timed loop is handle-based dense ingest.
void BM_FleetIngest(benchmark::State& state) {
  obs::set_enabled(false);
  const auto node_count = static_cast<std::size_t>(state.range(0));
  core::FleetEstimator fleet(fleet_model(), /*smoothing=*/0.2,
                             /*staleness_horizon_s=*/1e12);
  std::vector<core::NodeSample> batch(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    batch[n].node = fleet.intern("node" + std::to_string(n));
    batch[n].now_s = 0.0;
    fleet.layout().to_dense_guarded(sample_for_node(n), batch[n].sample);
  }
  fleet.ingest_batch(batch);  // registration round outside timing
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    for (core::NodeSample& ns : batch) {
      ns.now_s = now;
    }
    benchmark::DoNotOptimize(fleet.ingest_batch(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(node_count));
}
BENCHMARK(BM_FleetIngest)
    ->Arg(1000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Aggregate over a 100k-node fleet where every node is fresh.
void BM_FleetSnapshot(benchmark::State& state) {
  obs::set_enabled(false);
  constexpr std::size_t kNodes = 100000;
  core::FleetEstimator fleet(fleet_model(), /*smoothing=*/0.0,
                             /*staleness_horizon_s=*/1e12);
  std::vector<core::NodeSample> batch(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    batch[n].node = fleet.intern("node" + std::to_string(n));
    batch[n].now_s = 0.0;
    fleet.layout().to_dense_guarded(sample_for_node(n), batch[n].sample);
  }
  fleet.ingest_batch(batch);
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    const core::FleetSnapshot snap = fleet.snapshot(now);
    benchmark::DoNotOptimize(snap.total_watts);
  }
}
BENCHMARK(BM_FleetSnapshot)->Unit(benchmark::kMillisecond);

// The dense single-sample path (what one ingest costs after the batch
// machinery): a coefficient dot product, no map traffic.
void BM_EstimateDense(benchmark::State& state) {
  obs::set_enabled(false);
  core::OnlineEstimator estimator(fleet_model());
  const core::DenseSample sample =
      estimator.layout().to_dense(sample_for_node(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(sample));
  }
}
BENCHMARK(BM_EstimateDense);

}  // namespace
