// Applying fault decisions to concrete artifacts.
//
// apply_run_faults() perturbs a simulator RunResult the way a faulty DAQ
// chain would perturb a real run: intervals vanish or duplicate, counters
// stick/wrap/NaN, the sensor drops out or spikes, the run truncates.
// corrupt_serialized() mangles the bytes of a serialized trace (truncation
// and bit flips) so the reader's integrity checking is exercised end to end.
//
// Faults split into two classes, mirroring real instrumentation:
//  - *flagged* faults are the ones a real stack notices at acquisition time
//    (a died run, a sensor out-of-range, a NaN read). They set
//    RunFaultReport::flagged so the campaign can re-execute or quarantine
//    the run instead of merging garbage.
//  - *silent* faults (stuck counter, duplicated sample) look structurally
//    valid and survive into the data — the bounded-noise class whose effect
//    the robustness bench quantifies.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fault/fault.hpp"
#include "sim/engine.hpp"

namespace pwx::fault {

/// What apply_run_faults did to one run.
struct RunFaultReport {
  /// Injection count per fault-kind name (names keep aggregation stable).
  std::map<std::string, std::size_t> injected;
  /// True when at least one *detectable* fault fired (the acquisition layer
  /// should treat the run as failed and retry/quarantine it).
  bool flagged = false;

  bool any() const { return !injected.empty(); }
  void merge(const RunFaultReport& other);
};

/// Perturb `run` in place according to the injector's decisions for `site`.
/// Deterministic: same (plan, site, run) always produces the same result.
RunFaultReport apply_run_faults(const FaultInjector& injector, const std::string& site,
                                sim::RunResult& run);

/// Mangle serialized trace bytes in place (TruncateTrace / CorruptTraceByte
/// decisions for `site`). Returns the report; corruption is always flagged.
RunFaultReport corrupt_serialized(const FaultInjector& injector, const std::string& site,
                                  std::string& bytes);

}  // namespace pwx::fault
