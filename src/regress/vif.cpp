#include "regress/vif.hpp"

#include <limits>

#include "common/error.hpp"
#include "regress/ols.hpp"

namespace pwx::regress {

double vif_for_column(const la::Matrix& x, std::size_t j) {
  PWX_REQUIRE(j < x.cols(), "vif: column ", j, " out of range");
  PWX_REQUIRE(x.cols() >= 2, "vif needs at least two predictors");

  // Build the auxiliary design: all columns except j.
  std::vector<std::size_t> others;
  others.reserve(x.cols() - 1);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    if (c != j) {
      others.push_back(c);
    }
  }
  const la::Matrix design = x.select_columns(others);
  const std::vector<double> target = x.col(j);

  OlsOptions opt;
  opt.add_intercept = true;
  opt.cov_type = CovarianceType::NonRobust;
  try {
    const OlsResult aux = fit_ols(design, target, opt);
    if (aux.r_squared >= 1.0) {
      return std::numeric_limits<double>::infinity();
    }
    return 1.0 / (1.0 - aux.r_squared);
  } catch (const NumericalError&) {
    // The other predictors are themselves collinear: predictor j is trivially
    // inflated beyond measurement.
    return std::numeric_limits<double>::infinity();
  }
}

std::vector<double> vif_all(const la::Matrix& x) {
  std::vector<double> out(x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    out[j] = vif_for_column(x, j);
  }
  return out;
}

double mean_vif(const la::Matrix& x) {
  const std::vector<double> v = vif_all(x);
  double sum = 0.0;
  for (double value : v) {
    sum += value;
  }
  return sum / static_cast<double>(v.size());
}

}  // namespace pwx::regress
