#include "cpu/topology.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pwx::cpu {

MachineSpec haswell_ep_2690v3() {
  MachineSpec spec;
  spec.name = "2x Intel Xeon E5-2690 v3 (Haswell-EP)";
  spec.sockets = 2;
  spec.cores_per_socket = 12;
  spec.base_frequency_ghz = 2.6;
  spec.reference_clock_ghz = 2.5;
  spec.l1d_kib = 32;
  spec.l2_kib = 256;
  spec.l3_mib_per_socket = 30;
  spec.issue_width = 4;
  return spec;
}

std::vector<std::size_t> active_cores_per_socket(const MachineSpec& spec,
                                                 std::size_t threads,
                                                 Pinning pinning) {
  PWX_REQUIRE(threads <= spec.total_cores(), "thread count ", threads,
              " exceeds core count ", spec.total_cores());
  std::vector<std::size_t> per_socket(spec.sockets, 0);
  switch (pinning) {
    case Pinning::Compact: {
      std::size_t remaining = threads;
      for (std::size_t s = 0; s < spec.sockets && remaining > 0; ++s) {
        const std::size_t here = std::min(remaining, spec.cores_per_socket);
        per_socket[s] = here;
        remaining -= here;
      }
      break;
    }
    case Pinning::Scatter: {
      for (std::size_t t = 0; t < threads; ++t) {
        per_socket[t % spec.sockets] += 1;
      }
      break;
    }
  }
  return per_socket;
}

}  // namespace pwx::cpu
