// OTF2-lite application traces.
//
// The paper's acquisition writes Score-P traces in Open Trace Format 2: "a
// stream of events chronologically ordered by the time of their occurrence,
// and information about the state and configuration of the target system".
// This module reproduces that structure at the fidelity the workflow needs:
// region enter/exit events mark workload phases, metric events carry the
// asynchronously sampled power/voltage/PMC values, and global attributes
// record the run configuration (workload, f_clk, thread count).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace pwx::trace {

/// How a metric was recorded (mirrors the Score-P metric plugin modes).
enum class MetricMode : std::uint8_t {
  AsyncAverage,      ///< value is the average over the sampling interval (power)
  AsyncInstant,      ///< value is an instantaneous sample (voltage)
  CounterIncrement,  ///< value is an event-count increment since the last sample
};

/// Definition of one recorded metric.
struct MetricDefinition {
  std::string name;   ///< e.g. "power" or "PAPI_PRF_DM"
  std::string unit;   ///< e.g. "W", "V", "events"
  MetricMode mode = MetricMode::AsyncAverage;
};

/// A phase/region boundary.
struct RegionEnter {
  std::uint64_t time_ns = 0;
  std::string region;
};
struct RegionExit {
  std::uint64_t time_ns = 0;
  std::string region;
};

/// One metric sample referencing a definition by index.
struct MetricEvent {
  std::uint64_t time_ns = 0;
  std::uint32_t metric = 0;
  double value = 0.0;
};

using Event = std::variant<RegionEnter, RegionExit, MetricEvent>;

/// An in-memory OTF2-lite trace.
class Trace {
public:
  /// Register a metric; returns its index. Names must be unique.
  std::uint32_t define_metric(MetricDefinition definition);

  /// Index of a metric by name; throws when missing.
  std::uint32_t metric_index(const std::string& name) const;
  bool has_metric(const std::string& name) const;

  /// Append an event. Events must be appended in non-decreasing time order
  /// (chronological stream); violations throw.
  void append(Event event);

  const std::vector<MetricDefinition>& metrics() const { return metrics_; }
  const std::vector<Event>& events() const { return events_; }

  /// Free-form trace attributes (workload name, frequency, threads, ...).
  std::map<std::string, std::string>& attributes() { return attributes_; }
  const std::map<std::string, std::string>& attributes() const { return attributes_; }

  /// Attribute access with type conversion helpers.
  void set_attribute(const std::string& key, const std::string& value);
  void set_attribute(const std::string& key, double value);
  const std::string& attribute(const std::string& key) const;
  double attribute_as_double(const std::string& key) const;

  /// Timestamp of an event (for ordering checks and range queries).
  static std::uint64_t event_time(const Event& event);

private:
  std::vector<MetricDefinition> metrics_;
  std::map<std::string, std::uint32_t> metric_by_name_;
  std::vector<Event> events_;
  std::map<std::string, std::string> attributes_;
  std::uint64_t last_time_ns_ = 0;
};

}  // namespace pwx::trace
