// AVX2 lane-per-sample Equation-1 kernel: 4 samples per instruction.
//
// Compiled per-file with -mavx2 -mfma -ffp-contract=off (see
// src/core/CMakeLists.txt); dense_kernels.cpp dispatches here at runtime
// only after cpuid confirms AVX2+FMA.
//
// Bit-identity argument: the kernel vectorizes ACROSS samples, so every
// arithmetic step is the element-wise IEEE-754 operation the scalar path
// performs on that lane's sample, in the same order — vdivpd/vmulpd/vaddpd
// round each lane exactly like divsd/mulsd/addsd. The accumulation uses
// separate multiply and add intrinsics (never an FMA), because the scalar
// path rounds `per * v2f`, then `coef * (...)`, then the add as three
// operations; -ffp-contract=off additionally forbids the compiler from
// re-fusing them. The only "hoisted" values (v2f, f·1e9) are pure per-lane
// products the scalar loop recomputes with identical inputs, so the bits
// match. tests/batch_test.cpp pins scalar-vs-AVX2 digest equality.
#include "core/dense_kernels.hpp"

#ifdef PWX_HAVE_AVX2_KERNEL

#include <immintrin.h>

#include <cstring>
#include <limits>

namespace pwx::core::detail {

namespace {

/// isfinite(x), lane-wise: ordered (not NaN) and |x| < inf.
inline __m256d finite(__m256d x, __m256d inf) {
  const __m256d abs_x = _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
  return _mm256_and_pd(_mm256_cmp_pd(x, x, _CMP_ORD_Q),
                       _mm256_cmp_pd(abs_x, inf, _CMP_LT_OQ));
}

/// Lane-mask nibble → 4 validity bytes, written with one table load instead
/// of a per-lane shift/mask loop.
constexpr std::uint32_t kMaskBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u};

/// One 4-lane block starting at lane `i`, writing `live` (<= 4) outputs.
/// Every call site inlines with `live` known, so the tail branches fold
/// away in the hot loop.
inline void predict_block(const BatchArgs& args, std::size_t i,
                          std::size_t live, __m256d inf, __m256d giga,
                          __m256d intercept, bool use_inv) {
  const __m256d e = _mm256_loadu_pd(args.elapsed + i);
  const __m256d inv_e = use_inv ? _mm256_loadu_pd(args.inv_elapsed + i)
                                : _mm256_setzero_pd();
  const __m256d f = _mm256_loadu_pd(args.frequency + i);
  const __m256d v = _mm256_loadu_pd(args.voltage + i);
  const __m256d v2f = _mm256_mul_pd(_mm256_mul_pd(v, v), f);
  const __m256d denom = args.per_cycle ? _mm256_mul_pd(f, giga) : giga;
  __m256d acc = intercept;
  for (std::size_t s = 0; s < args.slots; ++s) {
    const __m256d c = _mm256_loadu_pd(args.columns[s] + i);
    // counts·(1/elapsed) replaces the divide bit-identically when the
    // batch proved every elapsed a power of two (see BatchArgs).
    const __m256d rate = use_inv ? _mm256_mul_pd(c, inv_e) : _mm256_div_pd(c, e);
    const __m256d per = _mm256_div_pd(rate, denom);
    // Separate mul/mul/add — an FMA here would skip the intermediate
    // rounding the scalar path performs and break bit-identity.
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(args.coef[s]),
                                           _mm256_mul_pd(per, v2f)));
  }
  if (args.has_dyn) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(args.dyn_coef), v2f));
  }
  if (args.has_static) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(args.static_coef), v));
  }
  __m256d ok{};
  if (args.valid != nullptr) {
    ok = finite(acc, inf);
  }
  if (args.clamp) {
    // std::clamp via compare+blend: lanes where acc < min take min, then
    // lanes where max < acc take max. NaN lanes fail both compares and
    // pass through, and -0.0 vs +0.0 ties keep acc — bit-for-bit what the
    // scalar std::clamp fold produces (max/min instructions would not).
    const __m256d lo = _mm256_set1_pd(args.clamp_min);
    const __m256d hi = _mm256_set1_pd(args.clamp_max);
    acc = _mm256_blendv_pd(acc, lo, _mm256_cmp_pd(acc, lo, _CMP_LT_OQ));
    acc = _mm256_blendv_pd(acc, hi, _mm256_cmp_pd(hi, acc, _CMP_LT_OQ));
  }
  if (live == 4) {
    _mm256_storeu_pd(args.out + i, acc);
  } else {
    // Tail block: the padding lanes are benign (computed safely above)
    // but the caller's spans only cover the live lanes.
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, acc);
    std::memcpy(args.out + i, tmp, live * sizeof(double));
  }
  if (args.valid != nullptr) {
    // try_predict's verdict: append-time input validity ANDed with the
    // output finiteness of this block's (pre-clamp) predictions.
    std::uint32_t bytes = kMaskBytes[_mm256_movemask_pd(ok) & 0xF];
    std::uint32_t input_bytes;
    std::memcpy(&input_bytes, args.lane_valid + i, 4);  // padding lanes valid
    bytes &= input_bytes;
    std::memcpy(args.valid + i, &bytes, live == 4 ? 4 : live);
  }
}

}  // namespace

void predict_lanes_avx2(const BatchArgs& args) {
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d giga = _mm256_set1_pd(1e9);
  const __m256d intercept = _mm256_set1_pd(args.intercept);
  const bool use_inv = args.inv_elapsed != nullptr;
  const std::size_t full = args.lanes / 4 * 4;
  std::size_t i = 0;
  // Unrolled pairs of full blocks: the two accumulator chains are
  // independent, so their divides and adds overlap in the out-of-order
  // window without any cross-block rounding interaction.
  for (; i + 8 <= full; i += 8) {
    predict_block(args, i, 4, inf, giga, intercept, use_inv);
    predict_block(args, i + 4, 4, inf, giga, intercept, use_inv);
  }
  for (; i < full; i += 4) {
    predict_block(args, i, 4, inf, giga, intercept, use_inv);
  }
  if (i < args.lanes) {
    predict_block(args, i, args.lanes - i, inf, giga, intercept, use_inv);
  }
}

}  // namespace pwx::core::detail

#endif  // PWX_HAVE_AVX2_KERNEL
