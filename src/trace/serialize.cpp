#include "trace/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pwx::trace {

namespace {

// Format v2 adds end-to-end integrity: the body (everything after the magic)
// is covered by an FNV-1a checksum stored as a u64 footer, so any bit flip —
// even inside an f64 payload that would otherwise parse fine — surfaces as a
// typed IoError instead of silently skewing downstream phase profiles.
constexpr char kMagic[8] = {'O', 'T', 'F', '2', 'L', 'T', 'v', '2'};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv1a_update(std::uint64_t& hash, const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
}

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void put_f64(std::ostream& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

enum : std::uint8_t { kRegionEnter = 1, kRegionExit = 2, kMetric = 3 };

/// Checksumming, position-tracking wrapper over the input stream. Every
/// failure it throws is an IoError carrying the byte offset where parsing
/// stopped and the index of the event record being decoded (-1 while still
/// in the header), so a corrupt file is diagnosable down to the byte.
class Reader {
public:
  explicit Reader(std::istream& in) : in_(in) {}

  void begin_record(std::uint64_t index) { record_ = static_cast<std::int64_t>(index); }
  std::uint64_t checksum() const { return checksum_; }
  std::int64_t offset() const { return static_cast<std::int64_t>(offset_); }

  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("trace: " + what + " (byte " + std::to_string(offset_) +
                      ", record " + std::to_string(record_) + ")",
                  static_cast<std::int64_t>(offset_), record_);
  }

  std::uint8_t u8() {
    char buf[1];
    raw(buf, 1);
    return static_cast<std::uint8_t>(buf[0]);
  }

  std::uint32_t u32() {
    char buf[4];
    raw(buf, 4);
    std::uint32_t v = 0;
    std::memcpy(&v, buf, 4);
    return v;
  }

  std::uint64_t u64() {
    char buf[8];
    raw(buf, 8);
    std::uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    return v;
  }

  double f64() {
    char buf[8];
    raw(buf, 8);
    double v = 0;
    std::memcpy(&v, buf, 8);
    return v;
  }

  std::string string() {
    const std::uint32_t len = u32();
    if (len > (1u << 24)) {
      fail("implausible string length " + std::to_string(len));
    }
    std::string s(len, '\0');
    if (len > 0) {
      raw(s.data(), len);
    }
    return s;
  }

  /// The footer is read outside the checksummed body.
  std::uint64_t footer_u64() {
    char buf[8];
    if (!in_.read(buf, 8)) {
      fail("truncated before checksum footer");
    }
    offset_ += 8;
    std::uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    return v;
  }

private:
  void raw(char* buf, std::size_t size) {
    if (!in_.read(buf, static_cast<std::streamsize>(size))) {
      fail("unexpected end of stream");
    }
    fnv1a_update(checksum_, buf, size);
    offset_ += size;
  }

  std::istream& in_;
  std::uint64_t offset_ = sizeof kMagic;  ///< bytes consumed, incl. magic
  std::int64_t record_ = -1;              ///< current event record (-1: header)
  std::uint64_t checksum_ = kFnvOffset;   ///< running FNV-1a over body bytes
};

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  // Serialize the body to memory first so the checksum can be computed over
  // exactly the bytes written.
  std::ostringstream body;

  put_u32(body, static_cast<std::uint32_t>(trace.attributes().size()));
  for (const auto& [key, value] : trace.attributes()) {
    put_string(body, key);
    put_string(body, value);
  }

  put_u32(body, static_cast<std::uint32_t>(trace.metrics().size()));
  for (const MetricDefinition& metric : trace.metrics()) {
    put_string(body, metric.name);
    put_string(body, metric.unit);
    put_u8(body, static_cast<std::uint8_t>(metric.mode));
  }

  put_u64(body, trace.events().size());
  for (const Event& event : trace.events()) {
    if (const auto* enter = std::get_if<RegionEnter>(&event)) {
      put_u8(body, kRegionEnter);
      put_u64(body, enter->time_ns);
      put_string(body, enter->region);
    } else if (const auto* exit = std::get_if<RegionExit>(&event)) {
      put_u8(body, kRegionExit);
      put_u64(body, exit->time_ns);
      put_string(body, exit->region);
    } else {
      const auto& metric = std::get<MetricEvent>(event);
      put_u8(body, kMetric);
      put_u64(body, metric.time_ns);
      put_u32(body, metric.metric);
      put_f64(body, metric.value);
    }
  }

  const std::string bytes = body.str();
  std::uint64_t checksum = kFnvOffset;
  fnv1a_update(checksum, bytes.data(), bytes.size());

  out.write(kMagic, sizeof kMagic);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  put_u64(out, checksum);
  if (!out) {
    throw IoError("trace: write failed");
  }
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("trace: cannot open '" + path + "' for writing");
  }
  write_trace(trace, out);
}

namespace {

Trace read_body(Reader& reader) {
  Trace trace;
  const std::uint32_t attr_count = reader.u32();
  if (attr_count > (1u << 20)) {
    reader.fail("implausible attribute count " + std::to_string(attr_count));
  }
  for (std::uint32_t i = 0; i < attr_count; ++i) {
    std::string key = reader.string();
    std::string value = reader.string();
    trace.set_attribute(key, value);
  }

  const std::uint32_t metric_count = reader.u32();
  if (metric_count > (1u << 20)) {
    reader.fail("implausible metric count " + std::to_string(metric_count));
  }
  for (std::uint32_t i = 0; i < metric_count; ++i) {
    MetricDefinition metric;
    metric.name = reader.string();
    metric.unit = reader.string();
    const std::uint8_t mode = reader.u8();
    if (mode > static_cast<std::uint8_t>(MetricMode::CounterIncrement)) {
      reader.fail("invalid metric mode " + std::to_string(mode));
    }
    metric.mode = static_cast<MetricMode>(mode);
    trace.define_metric(std::move(metric));
  }

  const std::uint64_t event_count = reader.u64();
  if (event_count > (1ull << 32)) {
    reader.fail("implausible event count " + std::to_string(event_count));
  }
  for (std::uint64_t i = 0; i < event_count; ++i) {
    reader.begin_record(i);
    const std::uint8_t kind = reader.u8();
    switch (kind) {
      case kRegionEnter: {
        RegionEnter e;
        e.time_ns = reader.u64();
        e.region = reader.string();
        trace.append(std::move(e));
        break;
      }
      case kRegionExit: {
        RegionExit e;
        e.time_ns = reader.u64();
        e.region = reader.string();
        trace.append(std::move(e));
        break;
      }
      case kMetric: {
        MetricEvent e;
        e.time_ns = reader.u64();
        e.metric = reader.u32();
        if (e.metric >= trace.metrics().size()) {
          reader.fail("metric id " + std::to_string(e.metric) +
                      " out of range (have " +
                      std::to_string(trace.metrics().size()) + ")");
        }
        e.value = reader.f64();
        trace.append(e);
        break;
      }
      default:
        reader.fail("unknown event kind " + std::to_string(kind));
    }
  }

  const std::uint64_t expected = reader.checksum();
  const std::uint64_t stored = reader.footer_u64();
  if (stored != expected) {
    reader.fail("checksum mismatch (file corrupt)");
  }
  return trace;
}

}  // namespace

Trace read_trace(std::istream& in) {
  char magic[8];
  if (!in.read(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    throw IoError("trace: bad magic (not an OTF2-lite v2 file)", 0, -1);
  }

  Reader reader(in);
  // Trace's own mutators (append, define_metric) validate invariants like
  // event chronology; a corrupt byte that violates one must still surface
  // as a position-carrying IoError, not as the mutator's InvalidArgument.
  try {
    return read_body(reader);
  } catch (const IoError&) {
    throw;
  } catch (const Error& e) {
    reader.fail(std::string("invalid record: ") + e.what());
  }
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("trace: cannot open '" + path + "' for reading");
  }
  return read_trace(in);
}

}  // namespace pwx::trace
