// Ablation — events per cycle vs events per second.
//
// The paper normalizes counter readings to events *per cycle*: "since the
// value of the PMC events are related to the operating frequency f_clk, the
// PMC event rate E_n ... is used" to reduce multicollinearity. This bench
// trains Equation 1 both ways and compares the feature-column mean VIF and
// cross-validated accuracy across DVFS states.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/validate.hpp"
#include "regress/vif.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Ablation: per-cycle vs per-second event rates",
                      "per-cycle rates reduce the multicollinearity of the "
                      "frequency-coupled features");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  core::FeatureSpec per_second = p.spec;
  per_second.normalization = core::RateNormalization::PerSecond;

  // Mean VIF over the event columns of the full multi-frequency design.
  std::vector<std::size_t> event_columns(p.spec.events.size());
  for (std::size_t i = 0; i < event_columns.size(); ++i) {
    event_columns[i] = i;
  }
  const la::Matrix x_cycle =
      core::build_features(*p.training, p.spec).select_columns(event_columns);
  const la::Matrix x_second =
      core::build_features(*p.training, per_second).select_columns(event_columns);

  const auto cv_cycle =
      core::k_fold_cross_validation(*p.training, p.spec, 10, bench::kCvSeed);
  const auto cv_second =
      core::k_fold_cross_validation(*p.training, per_second, 10, bench::kCvSeed);

  TablePrinter table({"normalization", "mean VIF (features)", "CV R2", "CV MAPE [%]"});
  table.row({"events per cycle (paper)", format_double(regress::mean_vif(x_cycle), 2),
             format_double(cv_cycle.mean.r_squared, 4),
             format_double(cv_cycle.mean.mape, 2)});
  table.row({"events per second", format_double(regress::mean_vif(x_second), 2),
             format_double(cv_second.mean.r_squared, 4),
             format_double(cv_second.mean.mape, 2)});
  table.print(std::cout);

  std::puts("\nshape check: the per-second features are at least as collinear as\n"
            "the per-cycle ones — the paper's normalization never hurts and\n"
            "decouples the event terms from f_clk.");
  return 0;
}
