file(REMOVE_RECURSE
  "CMakeFiles/pwx_la.dir/cholesky.cpp.o"
  "CMakeFiles/pwx_la.dir/cholesky.cpp.o.d"
  "CMakeFiles/pwx_la.dir/matrix.cpp.o"
  "CMakeFiles/pwx_la.dir/matrix.cpp.o.d"
  "CMakeFiles/pwx_la.dir/qr.cpp.o"
  "CMakeFiles/pwx_la.dir/qr.cpp.o.d"
  "CMakeFiles/pwx_la.dir/solve.cpp.o"
  "CMakeFiles/pwx_la.dir/solve.cpp.o.d"
  "CMakeFiles/pwx_la.dir/svd.cpp.o"
  "CMakeFiles/pwx_la.dir/svd.cpp.o.d"
  "libpwx_la.a"
  "libpwx_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
