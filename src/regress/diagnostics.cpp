#include "regress/diagnostics.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "regress/ols.hpp"
#include "regress/special.hpp"
#include "stats/descriptive.hpp"

namespace pwx::regress {

HeteroscedasticityTest breusch_pagan(const la::Matrix& x,
                                     std::span<const double> residuals) {
  PWX_REQUIRE(x.rows() == residuals.size(), "breusch_pagan: size mismatch");
  const std::size_t n = x.rows();
  std::vector<double> e2(n);
  for (std::size_t i = 0; i < n; ++i) {
    e2[i] = residuals[i] * residuals[i];
  }
  OlsOptions opt;
  opt.add_intercept = true;
  const OlsResult aux = fit_ols(x, e2, opt);

  HeteroscedasticityTest out;
  out.df = static_cast<double>(x.cols());
  out.lm_statistic = static_cast<double>(n) * aux.r_squared;
  out.p_value = chi_square_sf(out.lm_statistic, out.df);
  return out;
}

double variance_ratio_by_fitted(std::span<const double> fitted,
                                std::span<const double> residuals) {
  PWX_REQUIRE(fitted.size() == residuals.size() && fitted.size() >= 6,
              "variance ratio needs >= 6 matched points");
  const std::size_t n = fitted.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return fitted[a] < fitted[b]; });

  const std::size_t third = n / 3;
  std::vector<double> low;
  std::vector<double> high;
  low.reserve(third);
  high.reserve(third);
  for (std::size_t i = 0; i < third; ++i) {
    low.push_back(residuals[order[i]]);
    high.push_back(residuals[order[n - 1 - i]]);
  }
  const double v_low = stats::population_variance(low);
  const double v_high = stats::population_variance(high);
  if (v_low == 0.0) {
    return v_high == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return v_high / v_low;
}

}  // namespace pwx::regress
