// Lightweight leveled logging.
//
// The library is quiet by default (Warn); tools and examples raise the level.
// Logging is synchronized so that multi-threaded acquisition campaigns don't
// interleave characters.
#pragma once

#include <sstream>
#include <string>

namespace pwx {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);

/// Current global threshold.
LogLevel log_level();

/// Emit one line to stderr with a level prefix (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Parts>
void log_fmt(LogLevel level, Parts&&... parts) {
  if (level < log_level()) {
    return;
  }
  std::ostringstream os;
  (os << ... << parts);
  log_message(level, os.str());
}
}  // namespace detail

}  // namespace pwx

#define PWX_LOG_DEBUG(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Debug, __VA_ARGS__)
#define PWX_LOG_INFO(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Info, __VA_ARGS__)
#define PWX_LOG_WARN(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Warn, __VA_ARGS__)
#define PWX_LOG_ERROR(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Error, __VA_ARGS__)
