#!/usr/bin/env python3
"""Compare google-benchmark JSON results against bench/perf_baseline.json.

Usage:
    bench_compare.py [--baseline FILE] [--min-speedup X] RESULTS.json...

Each RESULTS.json is the --benchmark_out of one perf_* binary. For every
benchmark present in both the results and the baseline, the script prints
baseline time, current time, and the speedup factor (baseline / current,
so >1 is faster than the baseline), plus a geometric-mean speedup summary
over the matched benchmarks. With --min-speedup, the script exits non-zero
when any listed benchmark regresses below the bound — handy as a perf gate.
Exit codes: 0 ok, 1 gate failure, 2 no benchmarks found, 4 a gated
(--filter-matched) benchmark has no baseline entry to compare against:

    cmake --build build --target bench_compare

runs the selection suite and reports against the checked-in baseline.
Only python3's standard library is used.
"""

import argparse
import json
import math
import os
import re
import sys

UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_results(path):
    """Yield (name, real_ms, cpu_ms) for each benchmark iteration in `path`."""
    with open(path) as fh:
        data = json.load(fh)
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        scale = UNIT_TO_MS[bench.get("time_unit", "ns")]
        yield bench["name"], bench["real_time"] * scale, bench["cpu_time"] * scale


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_baseline = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "bench",
        "perf_baseline.json",
    )
    parser.add_argument("results", nargs="+", help="benchmark_out JSON files")
    parser.add_argument("--baseline", default=default_baseline)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail when any matched benchmark's speedup is below this factor",
    )
    parser.add_argument(
        "--filter",
        default=None,
        help="regex; only matching benchmark names are held to --min-speedup "
        "(everything is still printed)",
    )
    parser.add_argument(
        "--median",
        action="store_true",
        help="collapse repeated iteration entries of one benchmark "
        "(--benchmark_repetitions runs) to their median before comparing, "
        "so a gate judges the typical run instead of the noisiest one",
    )
    parser.add_argument(
        "--pair-suffix",
        default=None,
        help="compare each '<name><suffix>' benchmark against its '<name>' "
        "sibling from the same run (telemetry on vs off)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        help="with --pair-suffix: fail when the suffixed benchmark is more "
        "than this many percent slower than its sibling",
    )
    args = parser.parse_args(argv)
    name_filter = re.compile(args.filter) if args.filter else None

    with open(args.baseline) as fh:
        baseline = json.load(fh)["benchmarks"]

    measurements = []
    for path in args.results:
        measurements.extend(
            (name, real_ms) for name, real_ms, _cpu_ms in load_results(path)
        )
    if args.median:
        by_name = {}
        order = []
        for name, real_ms in measurements:
            if name not in by_name:
                order.append(name)
            by_name.setdefault(name, []).append(real_ms)
        measurements = [
            (name, sorted(by_name[name])[len(by_name[name]) // 2]) for name in order
        ]

    rows = []
    for name, real_ms in measurements:
        base = baseline.get(name)
        if base is None:
            rows.append((name, None, real_ms, None))
            continue
        speedup = base["real_time_ms"] / real_ms if real_ms > 0 else float("inf")
        rows.append((name, base["real_time_ms"], real_ms, speedup))

    if not rows:
        print("no benchmarks found in the given results files", file=sys.stderr)
        return 2

    width = max(len(r[0]) for r in rows)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'speedup':>8}")
    print("-" * (width + 40))
    failed = []
    missing_gated = []
    for name, base_ms, cur_ms, speedup in rows:
        if speedup is None:
            print(f"{name:<{width}}  {'(new)':>12}  {cur_ms:>9.3f} ms  {'n/a':>8}")
            # A gate cannot pass vacuously: a benchmark that --min-speedup
            # is supposed to hold but has no baseline entry is an error of
            # its own (someone renamed the benchmark or forgot to check the
            # baseline in), distinct from a regression.
            if (
                args.min_speedup is not None
                and (name_filter is None or name_filter.search(name))
            ):
                missing_gated.append(name)
            continue
        print(
            f"{name:<{width}}  {base_ms:>9.3f} ms  {cur_ms:>9.3f} ms  {speedup:>7.2f}x"
        )
        if (
            args.min_speedup is not None
            and speedup < args.min_speedup
            and (name_filter is None or name_filter.search(name))
        ):
            failed.append((name, speedup))

    speedups = [r[3] for r in rows if r[3] is not None and r[3] > 0]
    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        print(f"geomean speedup: {geomean:.2f}x over {len(speedups)} benchmarks")

    pair_failed = []
    if args.pair_suffix:
        # Median over repetitions: run the pair gate with
        # --benchmark_repetitions and --benchmark_enable_random_interleaving
        # so both sides sample the same machine conditions.
        samples = {}
        for name, _base, cur_ms, _speedup in rows:
            samples.setdefault(name, []).append(cur_ms)
        current = {
            name: sorted(times)[len(times) // 2] for name, times in samples.items()
        }
        for name in sorted(current):
            if not name.endswith(args.pair_suffix):
                continue
            sibling = name[: -len(args.pair_suffix)]
            if sibling not in current or current[sibling] <= 0:
                continue
            overhead = (current[name] / current[sibling] - 1.0) * 100.0
            print(f"pair {sibling}: {args.pair_suffix} overhead {overhead:+.2f}%")
            if args.max_overhead is not None and overhead > args.max_overhead:
                pair_failed.append((name, sibling, overhead))

    if failed or pair_failed:
        print()
        for name, speedup in failed:
            print(
                f"FAIL: {name} speedup {speedup:.2f}x below required "
                f"{args.min_speedup:.2f}x",
                file=sys.stderr,
            )
        for name, sibling, overhead in pair_failed:
            print(
                f"FAIL: {name} is {overhead:.2f}% slower than {sibling} "
                f"(limit {args.max_overhead:.2f}%)",
                file=sys.stderr,
            )
        return 1
    if missing_gated:
        for name in missing_gated:
            print(
                f"FAIL: {name} is held to --min-speedup but has no baseline "
                f"entry in {args.baseline}",
                file=sys.stderr,
            )
        return 4
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
