
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regress/diagnostics.cpp" "src/regress/CMakeFiles/pwx_regress.dir/diagnostics.cpp.o" "gcc" "src/regress/CMakeFiles/pwx_regress.dir/diagnostics.cpp.o.d"
  "/root/repo/src/regress/lasso.cpp" "src/regress/CMakeFiles/pwx_regress.dir/lasso.cpp.o" "gcc" "src/regress/CMakeFiles/pwx_regress.dir/lasso.cpp.o.d"
  "/root/repo/src/regress/ols.cpp" "src/regress/CMakeFiles/pwx_regress.dir/ols.cpp.o" "gcc" "src/regress/CMakeFiles/pwx_regress.dir/ols.cpp.o.d"
  "/root/repo/src/regress/ridge.cpp" "src/regress/CMakeFiles/pwx_regress.dir/ridge.cpp.o" "gcc" "src/regress/CMakeFiles/pwx_regress.dir/ridge.cpp.o.d"
  "/root/repo/src/regress/special.cpp" "src/regress/CMakeFiles/pwx_regress.dir/special.cpp.o" "gcc" "src/regress/CMakeFiles/pwx_regress.dir/special.cpp.o.d"
  "/root/repo/src/regress/vif.cpp" "src/regress/CMakeFiles/pwx_regress.dir/vif.cpp.o" "gcc" "src/regress/CMakeFiles/pwx_regress.dir/vif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pwx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pwx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pwx_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
