// Hardened decorator over any CounterSource.
//
// Production counter sources glitch: start() fails transiently while another
// tool holds the PMU, reads throw or stall, counters wrap their hardware
// width, and deltas occasionally come back NaN or negative. The
// RobustCounterSource wraps any CounterSource and absorbs that failure
// class so downstream consumers (OnlineEstimator, FleetEstimator) only ever
// see structurally valid samples:
//
//  - start(): bounded retry with exponential backoff; rethrows with context
//    (and health FAILED) only after the attempt budget is exhausted.
//  - read(): per-call retry budget; a watchdog clock flags reads that exceed
//    the configured deadline; negative deltas larger than half the counter
//    width are corrected as overflow wraps; NaN/Inf or residual-negative
//    samples are discarded and re-read.
//  - health: OK -> DEGRADED on any fault, DEGRADED -> OK after a streak of
//    clean reads, DEGRADED -> FAILED when a read exhausts its retry budget
//    twice in a row (FAILED is terminal: read() returns nullopt). While
//    DEGRADED with the budget exhausted once, the last good sample is
//    re-served (held) so the estimate stream stays alive, bounded by
//    max_held_samples.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/estimator.hpp"
#include "core/health.hpp"

namespace pwx::core {

/// Tunables of the hardening layer.
struct RobustSourceConfig {
  std::size_t start_attempts = 4;     ///< total start() tries before giving up
  double start_backoff_s = 0.0;       ///< sleep before retry (doubles per try)
  std::size_t read_attempts = 4;      ///< reads tried per read() call
  double read_timeout_s = 1.0;        ///< watchdog deadline per underlying read
  double counter_wrap = 281474976710656.0;  ///< 2^48: Haswell counter width
  std::size_t recover_streak = 3;     ///< clean reads to go DEGRADED -> OK
  std::size_t max_held_samples = 5;   ///< last-good re-serves before FAILED
};

/// Observable record of what the hardening layer absorbed.
struct RobustSourceStats {
  std::size_t reads = 0;              ///< samples delivered downstream
  std::size_t read_errors = 0;        ///< underlying read() throws
  std::size_t invalid_samples = 0;    ///< NaN/negative/zero-time samples discarded
  std::size_t overflow_corrections = 0;
  std::size_t watchdog_timeouts = 0;
  std::size_t held_samples = 0;       ///< last-good re-serves
  std::size_t start_retries = 0;
};

class RobustCounterSource final : public CounterSource {
public:
  /// Does not own `inner`; it must outlive this object.
  explicit RobustCounterSource(CounterSource& inner, RobustSourceConfig config = {});

  std::vector<pmc::Preset> available_events() const override;
  void start(const std::vector<pmc::Preset>& events) override;
  std::optional<CounterSample> read() override;

  HealthState health() const { return health_; }
  const RobustSourceStats& stats() const { return stats_; }
  const RobustSourceConfig& config() const { return config_; }

private:
  /// Validate and repair one raw sample; nullopt when unusable.
  std::optional<CounterSample> sanitize(CounterSample sample);
  void note_fault();
  void note_good();

  CounterSource& inner_;
  RobustSourceConfig config_;
  HealthState health_ = HealthState::Ok;
  RobustSourceStats stats_;
  std::size_t clean_streak_ = 0;
  std::size_t exhausted_in_a_row_ = 0;
  std::size_t held_in_a_row_ = 0;
  std::optional<CounterSample> last_good_;
};

}  // namespace pwx::core
