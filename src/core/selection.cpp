#include "core/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/model.hpp"
#include "regress/vif.hpp"

namespace pwx::core {

std::vector<pmc::Preset> SelectionResult::selected() const {
  std::vector<pmc::Preset> out;
  out.reserve(steps.size());
  for (const SelectionStep& step : steps) {
    out.push_back(step.event);
  }
  return out;
}

double selected_events_mean_vif(const acquire::Dataset& dataset,
                                const std::vector<pmc::Preset>& events) {
  PWX_REQUIRE(events.size() >= 2, "mean VIF needs at least two events");
  const la::Matrix rates = dataset.event_rate_matrix(events);
  return regress::mean_vif(rates);
}

SelectionResult select_events(const acquire::Dataset& dataset,
                              const std::vector<pmc::Preset>& candidates,
                              const SelectionOptions& options) {
  PWX_REQUIRE(!candidates.empty(), "selection needs candidate events");
  PWX_REQUIRE(options.count >= 1 && options.count <= candidates.size(),
              "cannot select ", options.count, " events from ", candidates.size(),
              " candidates");

  SelectionResult result;
  std::vector<pmc::Preset> selected;
  std::vector<pmc::Preset> remaining = candidates;

  auto fit_r2 = [&](const std::vector<pmc::Preset>& events, double& r2,
                    double& adj_r2) -> bool {
    FeatureSpec spec;
    spec.events = events;
    spec.normalization = options.normalization;
    try {
      // R² does not depend on the covariance estimator; use the cheap one.
      const PowerModel model =
          train_model(dataset, spec, regress::CovarianceType::NonRobust);
      r2 = model.fit().r_squared;
      adj_r2 = model.fit().adj_r_squared;
      return true;
    } catch (const NumericalError&) {
      return false;  // perfectly collinear with an already-selected event
    }
  };

  if (options.init_with_cycle_counter) {
    // Walker et al. seed the set with the cycle counter.
    const auto it = std::find(remaining.begin(), remaining.end(), pmc::Preset::TOT_CYC);
    PWX_REQUIRE(it != remaining.end(),
                "cycle-counter initialization requires TOT_CYC among the candidates");
    selected.push_back(pmc::Preset::TOT_CYC);
    remaining.erase(it);
    SelectionStep step;
    step.event = pmc::Preset::TOT_CYC;
    PWX_CHECK(fit_r2(selected, step.r_squared, step.adj_r_squared),
              "cycle-counter-only fit failed");
    result.steps.push_back(step);
  }

  const bool vif_veto = std::isfinite(options.max_mean_vif);
  while (selected.size() < options.count) {
    double best_r2 = -std::numeric_limits<double>::infinity();
    double best_adj = 0.0;
    double best_vif = 0.0;
    std::size_t best_index = remaining.size();

    for (std::size_t i = 0; i < remaining.size(); ++i) {
      std::vector<pmc::Preset> trial = selected;
      trial.push_back(remaining[i]);
      double r2 = 0.0;
      double adj = 0.0;
      if (!fit_r2(trial, r2, adj)) {
        continue;
      }
      if (r2 <= best_r2) {
        continue;
      }
      double vif = 0.0;
      if (trial.size() >= 2 && vif_veto) {
        vif = selected_events_mean_vif(dataset, trial);
        if (vif > options.max_mean_vif) {
          continue;  // stage-2 veto: event is too collinear to stay stable
        }
      }
      best_r2 = r2;
      best_adj = adj;
      best_vif = vif;
      best_index = i;
    }
    PWX_CHECK(best_index < remaining.size(),
              "no candidate event admits a full-rank fit within the VIF bound");

    SelectionStep step;
    step.event = remaining[best_index];
    step.r_squared = best_r2;
    step.adj_r_squared = best_adj;
    selected.push_back(remaining[best_index]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_index));
    if (selected.size() >= 2) {
      step.mean_vif =
          vif_veto ? best_vif : selected_events_mean_vif(dataset, selected);
    }
    PWX_LOG_DEBUG("selection step ", selected.size(), ": ",
                  std::string(pmc::preset_name(step.event)), " R2=", step.r_squared,
                  " meanVIF=", step.mean_vif);
    result.steps.push_back(step);
  }
  return result;
}

}  // namespace pwx::core
