# Empty dependencies file for repro_table4.
# This may be replaced when dependencies are built.
