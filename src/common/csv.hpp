// Minimal CSV writer used by the reproduction benches to dump figure data.
//
// Fields containing separators, quotes, or newlines are quoted per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pwx {

/// Streams rows of a CSV table to an std::ostream.
class CsvWriter {
public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  /// Write one row; each field is escaped as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: header row.
  void header(const std::vector<std::string>& names) { row(names); }

  /// Escape a single field (exposed for testing).
  static std::string escape(std::string_view field, char sep);

private:
  std::ostream& out_;
  char sep_;
};

}  // namespace pwx
