#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pwx::core {

namespace {

// Metric handles for the guarded estimation path. The strict estimate()
// fast path stays uninstrumented to honour the overhead contract.
struct EstimatorMetrics {
  obs::Counter& estimates;
  obs::Counter& invalid_samples;
  obs::Counter& clamped;
  obs::Counter& health_transitions;
  obs::Gauge& health;
};

EstimatorMetrics& estimator_metrics() {
  static EstimatorMetrics m{
      obs::registry().counter("estimator.estimates",
                              "guarded power estimates produced"),
      obs::registry().counter("estimator.invalid_samples",
                              "samples rejected by the guarded estimator"),
      obs::registry().counter("estimator.clamped",
                              "raw estimates clamped into the guard range"),
      obs::registry().counter("estimator.health_transitions",
                              "estimator health-state changes"),
      obs::registry().gauge("estimator.health",
                            "estimator health (0=ok, 1=degraded, 2=failed)"),
  };
  return m;
}

double smooth_step(double smoothing, double raw, GuardedState& state) {
  if (smoothing <= 0.0) {
    return raw;
  }
  if (!state.smoothed.has_value()) {
    state.smoothed = raw;
  } else {
    state.smoothed = smoothing * *state.smoothed + (1.0 - smoothing) * raw;
  }
  return *state.smoothed;
}

}  // namespace

double guarded_estimate_step(const ModelLayout& layout, double smoothing,
                             const EstimatorGuards& guards,
                             const DenseSample& sample, GuardedState& state) {
  const bool telemetry = obs::enabled();
  const HealthState before = state.health;
  const std::optional<double> raw = layout.try_predict(sample);
  if (raw.has_value()) {
    state.consecutive_invalid = 0;
    state.health = HealthState::Ok;
    const double clamped = std::clamp(*raw, guards.min_watts, guards.max_watts);
    const double out = smooth_step(smoothing, clamped, state);
    state.last_good = out;
    if (telemetry) {
      // Unguarded instrument ops: the one enabled() check above covers the
      // whole block, so the steady-state cost is a single atomic increment.
      EstimatorMetrics& m = estimator_metrics();
      m.estimates.add_unguarded(1);
      if (clamped != *raw) {
        m.clamped.add_unguarded(1);
      }
      // The gauge is only written on transitions to keep the steady-state
      // cost of this hot path to one counter increment.
      if (state.health != before) {
        m.health_transitions.add_unguarded(1);
        m.health.set_unguarded(static_cast<double>(state.health));
      }
    }
    return out;
  }
  // Invalid sample: hold the last good estimate with a bounded staleness.
  state.consecutive_invalid += 1;
  state.health = state.consecutive_invalid > guards.max_consecutive_invalid
                     ? HealthState::Failed
                     : HealthState::Degraded;
  const double held = state.last_good.value_or(guards.min_watts);
  // Black-box dump on the health *transition* (not every held estimate):
  // the flight ring at this moment holds the spans and metric deltas that
  // led into the degradation. Transition-only keeps the hot path clean.
  if (state.health != before && obs::flight().armed()) {
    obs::flight().trigger(state.health == HealthState::Failed
                              ? "estimator_failed"
                              : "estimator_degraded");
  }
  if (telemetry) {
    EstimatorMetrics& m = estimator_metrics();
    m.estimates.add_unguarded(1);
    m.invalid_samples.add_unguarded(1);
    if (state.health != before) {
      m.health_transitions.add_unguarded(1);
      m.health.set_unguarded(static_cast<double>(state.health));
    }
  }
  return std::clamp(held, guards.min_watts, guards.max_watts);
}

OnlineEstimator::OnlineEstimator(PowerModel model, double smoothing,
                                 EstimatorGuards guards)
    : current_(std::make_shared<const PublishedModel>(std::move(model), 1)),
      smoothing_(smoothing), guards_(guards),
      scratch_(current_->layout.make_sample()) {
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  PWX_REQUIRE(guards_.min_watts <= guards_.max_watts,
              "estimator guard range is inverted");
}

OnlineEstimator::OnlineEstimator(std::shared_ptr<LayoutEpoch> epoch,
                                 double smoothing, EstimatorGuards guards)
    : epoch_(std::move(epoch)), smoothing_(smoothing), guards_(guards) {
  PWX_REQUIRE(epoch_ != nullptr, "estimator needs a non-null epoch");
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  PWX_REQUIRE(guards_.min_watts <= guards_.max_watts,
              "estimator guard range is inverted");
  current_ = epoch_->current();
  scratch_ = current_->layout.make_sample();
}

double OnlineEstimator::smooth(double raw) {
  return smooth_step(smoothing_, raw, state_);
}

void OnlineEstimator::maybe_adopt() {
  if (epoch_ != nullptr && epoch_->generation() != current_->generation) {
    PWX_SPAN("epoch.adopt");
    current_ = epoch_->current();
    scratch_ = current_->layout.make_sample();
    // GuardedState survives: the held estimate and smoothing accumulator
    // carry across the swap, so the output stream never drops or restarts.
  }
}

double OnlineEstimator::estimate(const CounterSample& sample) {
  PWX_REQUIRE(sample.elapsed_s > 0.0, "sample needs a positive elapsed time");
  PWX_REQUIRE(sample.frequency_ghz > 0.0, "sample needs a frequency");
  PWX_REQUIRE(sample.voltage > 0.0, "sample needs a voltage");
  maybe_adopt();
  current_->layout.to_dense(sample, scratch_);
  return smooth(current_->layout.predict(scratch_));
}

double OnlineEstimator::estimate(const DenseSample& sample) {
  PWX_REQUIRE(sample.elapsed_s > 0.0, "sample needs a positive elapsed time");
  PWX_REQUIRE(sample.frequency_ghz > 0.0, "sample needs a frequency");
  PWX_REQUIRE(sample.voltage > 0.0, "sample needs a voltage");
  maybe_adopt();
  return smooth(current_->layout.predict(sample));
}

double OnlineEstimator::estimate_guarded(const CounterSample& sample) {
  maybe_adopt();
  current_->layout.to_dense_guarded(sample, scratch_);
  return guarded_estimate_step(current_->layout, smoothing_, guards_, scratch_,
                               state_);
}

double OnlineEstimator::estimate_guarded(const DenseSample& sample) {
  maybe_adopt();
  return guarded_estimate_step(current_->layout, smoothing_, guards_, sample,
                               state_);
}

void OnlineEstimator::reset() { state_.reset(); }

}  // namespace pwx::core
