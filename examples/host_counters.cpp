// Host PMU demonstration: real perf_event counters on real kernels.
//
// Probes PMU access, and when available runs each roco2-style host kernel
// under perf_event counting, printing per-cycle event rates — the E_n inputs
// of Equation 1 measured on actual hardware. Without PMU access (typical in
// containers) it reports why and exits cleanly: the library then falls back
// to the simulator for every experiment (see the other examples).
//
// Build & run:  ./build/examples/host_counters [seconds-per-kernel]
#include <cstdio>
#include <cstdlib>

#include "host/kernels.hpp"
#include "host/perf_source.hpp"

int main(int argc, char** argv) {
  using namespace pwx;
  const double seconds = argc > 1 ? std::strtod(argv[1], nullptr) : 0.3;

  const host::PerfProbe probe = host::probe_perf_events();
  std::printf("perf_event probe: %s\n", probe.detail.c_str());
  if (!probe.usable) {
    std::puts("PMU not accessible — run on bare metal or with "
              "perf_event_paranoid <= 2 to see live counters.");
    return 0;
  }

  // Nominal operating point for the report (no MSR access for VDD here).
  host::PerfEventSource source(/*frequency_ghz=*/2.4, /*voltage=*/1.0);
  const std::vector<pmc::Preset> events{pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS,
                                        pmc::Preset::BR_MSP, pmc::Preset::L1_DCM};

  std::puts("\nkernel        IPC     L1_DCM/kI  BR_MSP/kI   cycles/s");
  for (const std::string& kernel : host::kernel_names()) {
    source.start(events);
    host::run_kernel(kernel, seconds);
    const auto sample = source.read();
    if (!sample) {
      continue;
    }
    const double cycles = sample->counts.at(pmc::Preset::TOT_CYC);
    const double instructions = sample->counts.at(pmc::Preset::TOT_INS);
    const double l1_miss = sample->counts.at(pmc::Preset::L1_DCM);
    const double mispredicts = sample->counts.at(pmc::Preset::BR_MSP);
    std::printf("%-12s  %5.2f  %9.2f  %9.3f  %9.3g\n", kernel.c_str(),
                instructions / cycles, 1000.0 * l1_miss / instructions,
                1000.0 * mispredicts / instructions, cycles / sample->elapsed_s);
  }
  return 0;
}
