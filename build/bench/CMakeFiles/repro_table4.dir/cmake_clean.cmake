file(REMOVE_RECURSE
  "CMakeFiles/repro_table4.dir/repro_table4.cpp.o"
  "CMakeFiles/repro_table4.dir/repro_table4.cpp.o.d"
  "repro_table4"
  "repro_table4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
