#include "host/kernels.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace pwx::host {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

KernelResult run_compute(double seconds) {
  PWX_REQUIRE(seconds > 0.0, "kernel needs a positive duration");
  const auto start = Clock::now();
  double acc = 1.0;
  std::uint64_t x = 0x243F6A8885A308D3ULL;
  double ops = 0;
  while (seconds_since(start) < seconds) {
    for (int i = 0; i < 4096; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      acc = acc * 1.0000001 + static_cast<double>(x >> 40) * 1e-9;
      acc -= static_cast<double>(static_cast<std::int64_t>(acc));
    }
    ops += 4096;
  }
  return {"compute", seconds_since(start), ops, acc};
}

KernelResult run_sqrt(double seconds) {
  PWX_REQUIRE(seconds > 0.0, "kernel needs a positive duration");
  const auto start = Clock::now();
  double value = 1.7724538509055159;
  double ops = 0;
  while (seconds_since(start) < seconds) {
    for (int i = 0; i < 2048; ++i) {
      value = std::sqrt(value + 1.0);  // dependent chain: one sqrt at a time
    }
    ops += 2048;
  }
  return {"sqrt", seconds_since(start), ops, value};
}

KernelResult run_memory_read(double seconds, std::size_t buffer_mib) {
  PWX_REQUIRE(seconds > 0.0 && buffer_mib > 0, "bad kernel parameters");
  const std::size_t count = buffer_mib * 1024 * 1024 / sizeof(double);
  std::vector<double> buffer(count, 1.5);
  const auto start = Clock::now();
  double sum = 0;
  double bytes = 0;
  while (seconds_since(start) < seconds) {
    for (std::size_t i = 0; i < count; i += 8) {  // one load per cache line
      sum += buffer[i];
    }
    bytes += static_cast<double>(count) * sizeof(double);
  }
  return {"memory_read", seconds_since(start), bytes, sum};
}

KernelResult run_memory_copy(double seconds, std::size_t buffer_mib) {
  PWX_REQUIRE(seconds > 0.0 && buffer_mib > 0, "bad kernel parameters");
  const std::size_t bytes_per_pass = buffer_mib * 1024 * 1024;
  std::vector<char> src(bytes_per_pass, 1);
  std::vector<char> dst(bytes_per_pass, 0);
  const auto start = Clock::now();
  double bytes = 0;
  while (seconds_since(start) < seconds) {
    std::memcpy(dst.data(), src.data(), bytes_per_pass);
    bytes += static_cast<double>(bytes_per_pass);
    src[0] = dst[bytes_per_pass - 1];  // serialize passes
  }
  return {"memory_copy", seconds_since(start), bytes,
          static_cast<double>(dst[bytes_per_pass / 2])};
}

KernelResult run_matmul(double seconds, std::size_t n) {
  PWX_REQUIRE(seconds > 0.0 && n >= 16, "bad kernel parameters");
  std::vector<double> a(n * n, 1.0 / 3.0);
  std::vector<double> b(n * n, 2.0 / 7.0);
  std::vector<double> c(n * n, 0.0);
  const auto start = Clock::now();
  double flops = 0;
  constexpr std::size_t kBlock = 32;
  while (seconds_since(start) < seconds) {
    for (std::size_t ii = 0; ii < n; ii += kBlock) {
      for (std::size_t kk = 0; kk < n; kk += kBlock) {
        for (std::size_t jj = 0; jj < n; jj += kBlock) {
          for (std::size_t i = ii; i < ii + kBlock; ++i) {
            for (std::size_t k = kk; k < kk + kBlock; ++k) {
              const double aik = a[i * n + k];
              for (std::size_t j = jj; j < jj + kBlock; ++j) {
                c[i * n + j] += aik * b[k * n + j];
              }
            }
          }
        }
      }
    }
    flops += 2.0 * static_cast<double>(n) * static_cast<double>(n) *
             static_cast<double>(n);
    a[0] = c[n * n - 1] * 1e-12;  // serialize passes
  }
  return {"matmul", seconds_since(start), flops, c[n / 2 * n + n / 2]};
}

KernelResult run_busy_wait(double seconds) {
  PWX_REQUIRE(seconds > 0.0, "kernel needs a positive duration");
  const auto start = Clock::now();
  double spins = 0;
  volatile int sink = 0;
  while (seconds_since(start) < seconds) {
    for (int i = 0; i < 65536; ++i) {
      sink = sink + 1;
    }
    spins += 65536;
  }
  return {"busy_wait", seconds_since(start), spins, static_cast<double>(sink)};
}

std::vector<std::string> kernel_names() {
  return {"compute", "sqrt", "memory_read", "memory_copy", "matmul", "busy_wait"};
}

KernelResult run_kernel(const std::string& name, double seconds) {
  if (name == "compute") return run_compute(seconds);
  if (name == "sqrt") return run_sqrt(seconds);
  if (name == "memory_read") return run_memory_read(seconds);
  if (name == "memory_copy") return run_memory_copy(seconds);
  if (name == "matmul") return run_matmul(seconds);
  if (name == "busy_wait") return run_busy_wait(seconds);
  throw InvalidArgument("unknown kernel '" + name + "'");
}

}  // namespace pwx::host
