#include "pmc/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace pwx::pmc {

std::vector<EventGroup> schedule_events(const std::vector<Preset>& requested,
                                        const CounterBudget& budget) {
  PWX_REQUIRE(budget.programmable_slots > 0, "budget needs at least one slot");

  // Deduplicate while preserving first-seen order.
  std::vector<Preset> unique;
  for (Preset p : requested) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
      unique.push_back(p);
    }
  }

  // Without fixed counters, fixed-counter presets consume a general slot.
  const auto slot_cost = [&](Preset p) {
    const int slots = event_info(p).programmable_slots;
    return (slots == 0 && !budget.has_fixed_counters) ? 1 : slots;
  };

  std::vector<Preset> fixed;
  std::vector<Preset> programmable;
  for (Preset p : unique) {
    if (slot_cost(p) == 0) {
      fixed.push_back(p);
    } else {
      PWX_REQUIRE(slot_cost(p) <= budget.programmable_slots, "preset ",
                  std::string(event_info(p).name), " needs ", slot_cost(p),
                  " slots but the budget is ", budget.programmable_slots);
      programmable.push_back(p);
    }
  }

  // First-fit decreasing on slot cost; stable for equal costs to keep the
  // grouping deterministic.
  std::stable_sort(programmable.begin(), programmable.end(), [&](Preset a, Preset b) {
    return slot_cost(a) > slot_cost(b);
  });

  std::vector<EventGroup> groups;
  for (Preset p : programmable) {
    const int cost = slot_cost(p);
    EventGroup* target = nullptr;
    for (EventGroup& g : groups) {
      if (g.slots_used + cost <= budget.programmable_slots) {
        target = &g;
        break;
      }
    }
    if (target == nullptr) {
      groups.emplace_back();
      target = &groups.back();
    }
    target->events.push_back(p);
    target->slots_used += cost;
  }

  if (groups.empty() && !fixed.empty()) {
    groups.emplace_back();
  }
  if (!groups.empty()) {
    // Fixed counters ride along in the first run.
    auto& first = groups.front().events;
    first.insert(first.begin(), fixed.begin(), fixed.end());
  }
  return groups;
}

std::size_t runs_required(const std::vector<Preset>& requested,
                          const CounterBudget& budget) {
  return schedule_events(requested, budget).size();
}

}  // namespace pwx::pmc
