// Deterministic, seeded fault injection.
//
// Real counter-based power monitors run on machines where instrumentation
// misbehaves: PAPI/perf reads glitch, multiplexed runs die half-way, trace
// files truncate, and power sensors drop samples or spike. This subsystem
// makes that whole failure class *reproducible*: a FaultPlan names which
// fault kinds can fire (with per-kind probability, magnitude, and an
// optional site filter), and a FaultInjector turns the plan into pure,
// stateless decisions keyed on (plan seed, site string, occurrence index).
// The same plan therefore produces byte-identical fault schedules no matter
// how many threads execute the instrumented code or in which order — the
// property the chaos-campaign bench asserts.
//
// The injector only *decides*; the site-specific corruption helpers that
// apply a decision to simulator runs and serialized traces live in
// fault/inject.hpp, and the CounterSource-level decorator in
// host/faulty_source.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pwx::fault {

/// Everything that can go wrong, by instrumentation site.
enum class FaultKind : std::uint8_t {
  // Counter-sample faults (perf/PAPI read path).
  DropSample,       ///< a periodic sample is lost
  DuplicateSample,  ///< a sample is delivered twice
  StuckCounter,     ///< one counter repeats its previous value
  OverflowWrap,     ///< one counter wraps its hardware width (huge negative delta)
  NanDelta,         ///< one counter delta reads as NaN
  NegativeDelta,    ///< one counter delta reads slightly negative
  StartFailure,     ///< CounterSource::start fails transiently
  ReadFailure,      ///< CounterSource::read throws transiently
  // Run-level faults.
  TruncateRun,      ///< a run dies early, losing its tail intervals
  // Trace-file faults.
  TruncateTrace,    ///< serialized trace loses its tail bytes
  CorruptTraceByte, ///< a byte of the serialized trace is bit-flipped
  // Power-sensor faults.
  PowerDropout,     ///< sensor reports ~0 W for an interval
  PowerSpike,       ///< sensor reports a wild spike for an interval
  // Model-refresh faults (the serve retrain/publish pipeline).
  StaleLayoutPublish,  ///< refresher publishes against an outdated generation
  TruncatedCandidate,  ///< candidate model loses trailing coefficients
  ValidationTimeout,   ///< validation gate exceeds its watchdog deadline
};

inline constexpr std::size_t kFaultKindCount = 16;

/// Stable short name ("drop_sample", "power_spike", ...).
std::string_view fault_kind_name(FaultKind kind);

/// One fault channel of a plan.
struct FaultSpec {
  FaultKind kind = FaultKind::DropSample;
  double probability = 0.0;  ///< chance of firing per opportunity, in [0,1]
  double magnitude = 1.0;    ///< kind-specific scale (spike factor, ...)
  /// When non-empty, the spec only applies to sites whose key contains this
  /// substring (site keys look like "campaign/<workload>/f2.4/t24/g3/a0").
  std::string site_filter;
};

/// A complete seeded fault schedule.
struct FaultPlan {
  std::uint64_t seed = 0x0FA17;
  std::vector<FaultSpec> specs;

  /// Plan with a single fault channel (unit tests).
  static FaultPlan single(FaultKind kind, double probability, std::uint64_t seed,
                          double magnitude = 1.0);

  /// The chaos-campaign schedule: every fault kind armed at once, with
  /// per-opportunity probabilities scaled by `intensity` (1.0 = the default
  /// escalation used by bench/robustness_campaign).
  static FaultPlan escalating(std::uint64_t seed, double intensity = 1.0);

  /// Highest probability configured for `kind` at any site (0 = disarmed).
  double armed_probability(FaultKind kind) const;
};

/// Pure decision engine over a plan. Copyable, cheap, thread-safe (const).
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan plan);

  /// Does fault `kind` fire at `site` for occurrence `index`? Deterministic:
  /// depends only on (plan seed, kind, site, index) and the plan's specs.
  bool fires(FaultKind kind, std::string_view site, std::uint64_t index) const;

  /// Uniform value in [0,1) tied to the same decision key (used to pick
  /// which counter/byte/interval a firing fault corrupts). Independent of
  /// fires()'s draw.
  double draw(FaultKind kind, std::string_view site, std::uint64_t index) const;

  /// Magnitude configured for `kind` (first matching spec; 1.0 if none).
  double magnitude(FaultKind kind, std::string_view site) const;

  const FaultPlan& plan() const { return plan_; }

private:
  const FaultSpec* find_spec(FaultKind kind, std::string_view site) const;

  FaultPlan plan_;
};

}  // namespace pwx::fault
