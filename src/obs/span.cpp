#include "obs/span.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pwx::obs {

namespace {
// Per-thread current span path; spans append "/name" and restore on exit.
thread_local std::string t_path;  // NOLINT: intentional thread-local state
}  // namespace

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t SpanStats::depth() const {
  return static_cast<std::size_t>(std::count(path.begin(), path.end(), '/'));
}

std::string_view SpanStats::name() const {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos
             ? std::string_view(path)
             : std::string_view(path).substr(slash + 1);
}

void SpanRegistry::record(std::string_view path, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(path);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(path), Cell{}).first;
  }
  Cell& cell = it->second;
  cell.min_s = cell.calls == 0 ? seconds : std::min(cell.min_s, seconds);
  cell.max_s = cell.calls == 0 ? seconds : std::max(cell.max_s, seconds);
  cell.calls += 1;
  cell.total_s += seconds;
}

std::vector<SpanStats> SpanRegistry::profile() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanStats> out;
  out.reserve(cells_.size());
  for (const auto& [path, cell] : cells_) {
    SpanStats stats;
    stats.path = path;
    stats.calls = cell.calls;
    stats.total_s = cell.total_s;
    stats.min_s = cell.min_s;
    stats.max_s = cell.max_s;
    out.push_back(std::move(stats));
  }
  return out;
}

void SpanRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cells_.clear();
}

SpanRegistry& spans() {
  static SpanRegistry instance;  // NOLINT: intentional process lifetime
  return instance;
}

Span::Span(std::string_view name) {
  if (tracing_active()) {
    traced_ = trace_detail::begin_span(name);
  }
  if (!enabled()) {
    return;
  }
  active_ = true;
  parent_length_ = t_path.size();
  if (!t_path.empty()) {
    t_path += '/';
  }
  t_path += name;
  start_s_ = monotonic_s();
}

Span::~Span() {
  if (active_) {
    const double elapsed = monotonic_s() - start_s_;
    spans().record(t_path, elapsed);
    t_path.resize(parent_length_);
  }
  if (traced_) {
    trace_detail::end_span();
  }
}

}  // namespace pwx::obs
