#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pwx::sim {

namespace {

/// Background OS activity on a core with no workload thread: timer ticks and
/// kernel housekeeping. Roughly 0.3 % duty cycle of idle-like work.
workloads::PhaseCharacter os_background() {
  workloads::PhaseCharacter p;
  p.name = "os";
  p.base_cpi = 1.5;
  p.unhalted_frac = 0.003;
  p.frac_load = 0.22;
  p.frac_store = 0.08;
  p.frac_branch_cn = 0.18;
  p.branch_misp_rate = 0.02;
  p.l1d_ld_mpki = 4.0;
  p.l1d_st_mpki = 1.0;
  p.l1i_mpki = 3.0;
  p.l2_ld_mpki = 1.5;
  p.l2_st_mpki = 0.4;
  p.l2i_mpki = 0.8;
  p.l3_ld_mpki = 0.5;
  p.l3_wb_mpki = 0.2;
  p.tlb_d_mpki = 0.4;
  p.tlb_i_mpki = 0.3;
  p.prefetch_mpki = 0.8;
  p.full_issue_cpki = 20.0;
  p.full_compl_cpki = 15.0;
  p.stall_issue_base_cpki = 500.0;
  p.stall_compl_base_cpki = 600.0;
  p.res_stall_base_cpki = 300.0;
  p.uops_per_inst = 1.15;
  p.variability_cv = 0.05;
  return p;
}

/// Hidden activity produced alongside the counters.
struct HiddenActivity {
  double avx256_instructions = 0;
  double uops = 0;
  double dram_bytes = 0;
};

HiddenActivity hidden_for(const workloads::PhaseCharacter& c, double instructions) {
  HiddenActivity h;
  h.avx256_instructions = c.avx256_frac * instructions;
  // The generator bills per "energy-weighted" uop: the workload's switching
  // activity scales what each uop costs, so the weight is applied here.
  h.uops = c.uops_per_inst * c.exec_energy_scale * instructions;
  h.dram_bytes = c.dram_bytes_per_inst * instructions;
  return h;
}

}  // namespace

double effective_cpi(const workloads::PhaseCharacter& c, double frequency_ghz) {
  return c.base_cpi + c.mem_ns_per_inst * frequency_ghz;
}

pmc::ActivityCounts generate_core_activity(const workloads::PhaseCharacter& c,
                                           double frequency_ghz, double reference_ghz,
                                           double interval_s, double slowdown,
                                           std::size_t coactive_cores, Rng& rng) {
  PWX_REQUIRE(slowdown > 0.0 && slowdown <= 1.0, "slowdown must be in (0,1], got ",
              slowdown);
  pmc::ActivityCounts a;
  // One correlated intensity draw per interval models run/interval level
  // variability; events share it so their ratios stay workload-typical. The
  // floors reflect that even the steadiest kernel shows ~1.5 % run-to-run
  // variation on real hardware (interrupts, placement, DVFS transients).
  const double intensity =
      rng.lognormal_mean_cv(1.0, std::max(0.012, c.variability_cv));
  // Independent per-counter jitter on top (sampling alignment, OS noise).
  const double jitter_cv = std::max(0.008, 0.3 * c.variability_cv);
  auto jitter = [&](double value) {
    return value <= 0.0 ? 0.0 : rng.lognormal_mean_cv(value, jitter_cv);
  };

  const double hz = frequency_ghz * 1e9;
  a.cycles = interval_s * hz * c.unhalted_frac * intensity;
  a.ref_cycles = interval_s * reference_ghz * 1e9 * c.unhalted_frac * intensity;

  const double cpi = effective_cpi(c, frequency_ghz);
  const double instructions = a.cycles / cpi * slowdown;
  a.instructions = instructions;

  a.load_ins = jitter(c.frac_load * instructions);
  a.store_ins = jitter(c.frac_store * instructions);
  a.branch_cn = jitter(c.frac_branch_cn * instructions);
  a.branch_ucn = jitter(c.frac_branch_ucn * instructions);
  a.branch_taken = c.branch_taken_rate * a.branch_cn;
  a.branch_misp = jitter(c.branch_misp_rate * a.branch_cn);

  const double ki = instructions / 1000.0;
  // Shared-cache contention: with more co-active cores, each core's share of
  // L3 and of the page-walk caches shrinks, so per-core miss rates rise and
  // the prefetcher loses accuracy. The growth is linear in the co-runner
  // share, scaled by the workload's capacity sensitivity.
  const double corun = coactive_cores > 1
                           ? static_cast<double>(coactive_cores - 1) / 23.0
                           : 0.0;
  const double contention = 1.0 + c.cache_contention * corun;
  a.l1d_load_miss = jitter(c.l1d_ld_mpki * ki);
  a.l1d_store_miss = jitter(c.l1d_st_mpki * ki);
  a.l1i_miss = jitter(c.l1i_mpki * ki);
  a.prefetch_miss = jitter(c.prefetch_mpki * (1.0 + 0.5 * c.cache_contention * corun) * ki);

  // Access chains: a level's accesses are the level above's misses (demand)
  // plus the prefetcher share that targets it.
  a.l2_data_read = a.l1d_load_miss + 0.6 * a.prefetch_miss;
  a.l2_data_write = a.l1d_store_miss;
  // L2 instruction reads: demand L1I misses plus speculative refetch after
  // mispredicted branches and page-walk fetches — workload-dependent terms
  // that keep the counter correlated with, but not proportional to, L1_ICM.
  a.l2_inst_read = jitter((c.l1i_mpki + 2.0 * c.tlb_i_mpki +
                           12.0 * c.branch_misp_rate * c.frac_branch_cn) *
                          ki);
  a.l2_load_miss = jitter(c.l2_ld_mpki * ki);
  a.l2_store_miss = jitter(c.l2_st_mpki * ki);
  a.l2_inst_miss = jitter(c.l2i_mpki * ki);
  a.l3_data_read = a.l2_load_miss + 0.4 * a.prefetch_miss;
  a.l3_data_write = a.l2_store_miss;
  a.l3_inst_read = a.l2_inst_miss;
  a.l3_load_miss = jitter(c.l3_ld_mpki * contention * ki);
  a.l3_total_miss =
      jitter((c.l3_ld_mpki + c.l3_wb_mpki) * contention * ki) + 0.5 * a.prefetch_miss;

  a.tlb_data_miss = jitter(c.tlb_d_mpki * (1.0 + 0.6 * c.cache_contention * corun) * ki);
  a.tlb_inst_miss = jitter(c.tlb_i_mpki * ki);

  // Snoop traffic grows with the number of co-active caches; the per-core
  // shared/clean/invalidation request rates are workload properties (how the
  // application shares data), not functions of the core count.
  const double peers = coactive_cores > 0 ? static_cast<double>(coactive_cores - 1) : 0.0;
  a.snoop_requests = jitter(c.snoop_pki_per_core * peers * ki);
  a.shared_access = jitter(c.shared_pki * ki);
  a.clean_exclusive = jitter(c.clean_pki * ki);
  a.invalidations = jitter(c.inv_pki * ki);

  // Cycle histogram: core-bound shares are per kilo-instruction; memory and
  // bandwidth-cap stalls are whatever the cycle budget leaves over the
  // core-busy cycles.
  const double core_busy = instructions * c.base_cpi;
  const double mem_stall = std::max(0.0, a.cycles - core_busy);
  a.full_issue_cycles = std::min(a.cycles, jitter(c.full_issue_cpki * ki));
  a.full_compl_cycles = std::min(a.cycles, jitter(c.full_compl_cpki * ki));
  // Issue keeps going during part of a memory stall (the OoO window drains),
  // completion stops for all of it, and resource stalls fall in between —
  // the three counters are correlated but carry distinct information.
  a.stall_issue_cycles =
      std::min(a.cycles, jitter(c.stall_issue_base_cpki * ki) + 0.55 * mem_stall);
  a.stall_compl_cycles =
      std::min(a.cycles, jitter(c.stall_compl_base_cpki * ki) + mem_stall);
  a.resource_stall_cycles =
      std::min(a.cycles, jitter(c.res_stall_base_cpki * ki) + 0.8 * mem_stall);
  a.mem_write_stall_cycles = std::min(a.cycles, jitter(c.mem_wstall_cpki * ki));
  return a;
}

Engine::Engine(cpu::MachineSpec spec, cpu::DvfsTable dvfs,
               power::GroundTruthPower truth, power::SensorSpec sensor_spec,
               std::uint64_t machine_seed)
    : spec_(std::move(spec)), dvfs_(std::move(dvfs)), truth_(std::move(truth)) {
  Rng seeder(machine_seed);
  for (std::size_t s = 0; s < spec_.sockets; ++s) {
    socket_sensors_.emplace_back(sensor_spec, seeder());
    // Per-socket VID offset of a few millivolts, as real parts show.
    const double vid_offset = seeder.uniform(-0.004, 0.004);
    voltage_sensors_.emplace_back(dvfs_, vid_offset);
  }
}

Engine Engine::haswell_ep(std::uint64_t machine_seed) {
  return Engine(cpu::haswell_ep_2690v3(), cpu::haswell_ep_dvfs(),
                power::GroundTruthPower::haswell_ep(), power::SensorSpec{},
                machine_seed);
}

RunResult Engine::run(const workloads::Workload& workload,
                      const RunConfig& config) const {
  PWX_REQUIRE(config.frequency_ghz >= dvfs_.min_frequency_ghz() &&
                  config.frequency_ghz <= dvfs_.max_frequency_ghz(),
              "frequency ", config.frequency_ghz, " GHz outside the DVFS range");
  PWX_REQUIRE(config.threads >= 1 && config.threads <= spec_.total_cores(),
              "thread count ", config.threads, " not supported by the machine");
  PWX_REQUIRE(config.interval_s > 0.0, "interval must be positive");
  workloads::validate(workload);

  RunResult result;
  result.workload = workload.name;
  result.config = config;

  Rng rng(config.seed);
  const std::vector<std::size_t> threads_per_socket =
      cpu::active_cores_per_socket(spec_, config.threads, config.pinning);
  const workloads::PhaseCharacter background = os_background();

  // Content-dependent dynamic-power factor: seeded by the configuration key
  // (not the run seed), so all multiplexed runs of one configuration share
  // it — as they share the input data whose values drive the switching.
  std::uint64_t config_key = 0xcbf29ce484222325ULL;
  for (const char ch : workload.name) {
    config_key = (config_key ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
  }
  config_key ^= static_cast<std::uint64_t>(config.frequency_ghz * 1e4);
  config_key = config_key * 0x100000001b3ULL + config.threads;
  Rng content_rng(config_key);
  const double dynamic_scale =
      config.content_variation_cv > 0.0
          ? content_rng.lognormal_mean_cv(1.0, config.content_variation_cv)
          : 1.0;
  const double baseline_offset =
      content_rng.normal(0.0, config.baseline_offset_sigma_watts);

  double total_weight = 0.0;
  for (const auto& phase : workload.phases) {
    total_weight += phase.weight;
  }
  const double duration = workload.nominal_duration_s * config.duration_scale;

  double now = 0.0;
  for (const auto& phase : workload.phases) {
    const double phase_duration = duration * phase.weight / total_weight;
    const auto interval_count = static_cast<std::size_t>(
        std::max(1.0, std::round(phase_duration / config.interval_s)));
    for (std::size_t iv = 0; iv < interval_count; ++iv) {
      IntervalRecord rec;
      rec.t_begin_s = now;
      rec.t_end_s = now + config.interval_s;
      rec.phase = phase.name;
      rec.active_threads = config.threads;
      now = rec.t_end_s;

      double measured_power = 0.0;
      double true_power = 0.0;
      double measured_voltage = 0.0;
      for (std::size_t socket = 0; socket < spec_.sockets; ++socket) {
        const std::size_t active = threads_per_socket[socket];
        const std::size_t idle = spec_.cores_per_socket - active;

        // Bandwidth ceiling: estimate the socket's unconstrained DRAM demand
        // and derive a common slowdown for its cores.
        double slowdown = 1.0;
        if (active > 0 && phase.dram_bytes_per_inst > 0.0) {
          const double cpi = effective_cpi(phase, config.frequency_ghz);
          const double inst_rate = config.frequency_ghz * 1e9 *
                                   phase.unhalted_frac / cpi *
                                   static_cast<double>(active);
          const double demand_gbs = inst_rate * phase.dram_bytes_per_inst / 1e9;
          const double cap = truth_.statics().socket_dram_bandwidth_gbs;
          if (demand_gbs > cap) {
            slowdown = cap / demand_gbs;
          }
        }

        power::SocketActivity socket_activity;
        socket_activity.total_cores = spec_.cores_per_socket;
        socket_activity.active_cores = active;
        socket_activity.duration_s = config.interval_s;
        socket_activity.frequency_ghz = config.frequency_ghz;

        HiddenActivity hidden;
        for (std::size_t core = 0; core < active; ++core) {
          const pmc::ActivityCounts counts = generate_core_activity(
              phase, config.frequency_ghz, spec_.reference_clock_ghz,
              config.interval_s, slowdown, config.threads, rng);
          const HiddenActivity h = hidden_for(phase, counts.instructions);
          hidden.avx256_instructions += h.avx256_instructions;
          hidden.uops += h.uops;
          hidden.dram_bytes += h.dram_bytes;
          socket_activity.counts += counts;
        }
        for (std::size_t core = 0; core < idle; ++core) {
          const pmc::ActivityCounts counts = generate_core_activity(
              background, config.frequency_ghz, spec_.reference_clock_ghz,
              config.interval_s, 1.0, 1, rng);
          const HiddenActivity h = hidden_for(background, counts.instructions);
          hidden.uops += h.uops;
          socket_activity.counts += counts;
        }
        socket_activity.avx256_instructions = hidden.avx256_instructions;
        socket_activity.uops = hidden.uops;
        socket_activity.dram_bytes = hidden.dram_bytes;
        socket_activity.dynamic_scale = dynamic_scale;
        socket_activity.baseline_offset_watts = baseline_offset;

        // Voltage droop depends on power which depends on voltage; two
        // passes converge to well below the MSR quantization step.
        double voltage =
            voltage_sensors_[socket].true_voltage(config.frequency_ghz, 0.0);
        double socket_true = 0.0;
        for (int pass = 0; pass < 2; ++pass) {
          socket_activity.voltage = voltage;
          socket_true = truth_.socket_input_watts(socket_activity);
          voltage = voltage_sensors_[socket].true_voltage(config.frequency_ghz,
                                                          socket_true);
        }
        true_power += socket_true;
        measured_power +=
            socket_sensors_[socket].average(socket_true, config.interval_s, rng);
        if (socket == 0) {
          measured_voltage = cpu::VoltageSensor::quantize(voltage);
        }

        rec.counts += socket_activity.counts;
      }
      rec.measured_power_watts = measured_power;
      rec.true_power_watts = true_power;
      rec.measured_voltage = measured_voltage;
      result.intervals.push_back(std::move(rec));
    }
  }
  result.wall_time_s = now;
  return result;
}

}  // namespace pwx::sim
