// pwx-monitor — live power estimation with telemetry streaming.
//
// Trains the paper's model once, then streams a (simulated) counter source
// through the guarded online estimator, emitting one JSON line per sample
// (estimate, measured reference, health) interleaved with periodic
// obs::TelemetrySink metric snapshots. With --faults the source is wrapped
// in the seeded chaos decorator and hardened by RobustCounterSource, so the
// exported metrics show retries, clamps, and health transitions live.
//
// Usage:
//   pwx-monitor [--workload NAME] [--threads N] [--samples N]
//               [--interval-s X] [--format jsonl|prometheus|table]
//               [--faults SEED [--intensity X]] [--no-robust]
//               [--log-json] [--spans] [--fleet N]
//               [--trace] [--trace-replay FILE]
//
// With --trace a structured tracing session (obs/trace.hpp) runs for the
// whole stream: every sample is wrapped in a "monitor.sample" root span,
// drained span records stream to stdout as {"event":"span",...} JSONL
// interleaved with the estimate lines, and a per-span latency attribution
// table (total/self time per span name) lands on stderr at the end.
// --trace-replay FILE skips the live stream entirely: it parses a recorded
// span JSONL file (e.g. a --trace capture) and prints the same attribution
// table to stdout, for offline "which stage owns the latency" analysis.
//
// With --fleet N the tool monitors N simulated nodes (each a different
// physical part running the same workload) through one sharded
// FleetEstimator: every round all node samples are ingested as one batch
// and a "fleet" JSON line carries the aggregate snapshot instead of the
// per-sample "estimate" lines. Default behavior (no --fleet) is unchanged.
//
// Time is stream time (the sum of sample intervals), not wall time, so the
// output is deterministic for a given seed and replays faithfully in tests.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "acquire/campaign.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/health.hpp"
#include "core/model.hpp"
#include "core/robust_source.hpp"
#include "core/selection.hpp"
#include "fault/fault.hpp"
#include "host/faulty_source.hpp"
#include "host/sim_source.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload NAME] [--threads N] [--samples N]\n"
               "          [--interval-s X] [--format jsonl|prometheus|table]\n"
               "          [--faults SEED [--intensity X]] [--no-robust]\n"
               "          [--log-json] [--spans] [--fleet N]\n"
               "          [--trace] [--trace-replay FILE] [--aggregate FILE]\n",
               argv0);
  return 2;
}

// Aggregate replay: render the merged-snapshot JSONL an aggregator
// (pwx-fleetd --aggregate) emits, so the live-monitor workflow covers
// multi-process fleets. One human-readable line per fleet snapshot plus a
// trailing summary; non-fleet events interleaved in the stream are skipped.
int run_aggregate_replay(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open aggregate file '%s'\n", path);
    return 1;
  }
  const auto num_field = [](const std::string& line, const char* key,
                            double fallback) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) {
      return fallback;
    }
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
  };
  const auto str_field = [](const std::string& line, const char* key) {
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) {
      return std::string();
    }
    const std::size_t begin = at + needle.size();
    return line.substr(begin, line.find('"', begin) - begin);
  };
  std::size_t snapshots = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"event\":\"fleet\"") == std::string::npos) {
      continue;
    }
    snapshots += 1;
    const auto leaves = static_cast<std::size_t>(num_field(line, "leaves", 1));
    const auto leaf_count =
        static_cast<std::size_t>(num_field(line, "leaf_count", 1));
    std::printf(
        "t=%.3fs leaves=%zu/%zu reporting=%zu stale=%zu degraded=%zu "
        "failed=%zu total=%.3fW",
        num_field(line, "t_s", 0.0), leaves, leaf_count,
        static_cast<std::size_t>(num_field(line, "nodes_reporting", 0)),
        static_cast<std::size_t>(num_field(line, "nodes_stale", 0)),
        static_cast<std::size_t>(num_field(line, "nodes_degraded", 0)),
        static_cast<std::size_t>(num_field(line, "nodes_failed", 0)),
        num_field(line, "total_watts", 0.0));
    const std::string digest = str_field(line, "digest");
    if (!digest.empty()) {
      std::printf(" [digest %s]", digest.c_str());
    }
    std::printf("\n");
  }
  std::printf("aggregated %zu fleet snapshots from %s\n", snapshots, path);
  return snapshots > 0 ? 0 : 1;
}

// Offline replay: parse a recorded span JSONL stream and print the latency
// attribution table. The input may interleave non-span events (metrics
// lines from a --trace capture); the parser skips them.
int run_trace_replay(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::vector<pwx::obs::SpanRecord> records =
      pwx::obs::parse_span_jsonl(text.str());
  std::fprintf(stderr, "replayed %zu spans from %s\n", records.size(), path);
  pwx::obs::print_attribution_table(pwx::obs::attribute_latency(records),
                                    std::cout);
  return 0;
}

// Stream freshly drained span records as JSONL and keep them for the final
// attribution table.
void drain_spans(std::vector<pwx::obs::SpanRecord>& all) {
  for (pwx::obs::SpanRecord& record : pwx::obs::tracer().drain()) {
    std::cout << pwx::obs::span_to_jsonl_line(record) << "\n";
    all.push_back(std::move(record));
  }
}

// Fleet mode: N simulated nodes through one FleetEstimator, one batch
// ingest and one snapshot line per telemetry round.
int run_fleet(pwx::core::PowerModel model, std::size_t fleet_nodes,
              const pwx::workloads::Workload& workload, std::size_t threads,
              std::size_t max_rounds, pwx::obs::TelemetrySink& sink) {
  using namespace pwx;
  core::FleetOptions options;
  options.shard_count = 8;
  core::FleetEstimator fleet(std::move(model), /*smoothing=*/0.3,
                             /*staleness_horizon_s=*/5.0, options);

  struct Node {
    core::NodeId id;
    sim::Engine engine;
    host::SimulatedCounterSource source;
  };
  std::vector<Node> nodes;
  nodes.reserve(fleet_nodes);
  for (std::size_t n = 0; n < fleet_nodes; ++n) {
    sim::Engine engine = sim::Engine::haswell_ep(0x2000 + n);
    sim::RunConfig rc;
    rc.threads = threads;
    rc.interval_s = 0.25;
    rc.seed = 2026 + n;
    host::SimulatedCounterSource source(engine, workload, rc);
    nodes.push_back(Node{fleet.intern("node" + std::to_string(n)),
                         std::move(engine), std::move(source)});
  }
  for (Node& node : nodes) {
    node.source.start(fleet.model().spec().events);
  }

  double stream_t = 0.0;
  std::size_t rounds = 0;
  std::vector<core::NodeSample> batch;
  core::DenseSample dense = fleet.layout().make_sample();
  while (max_rounds == 0 || rounds < max_rounds) {
    batch.clear();
    double interval = 0.0;
    for (Node& node : nodes) {
      if (const auto sample = node.source.read()) {
        fleet.layout().to_dense_guarded(*sample, dense);
        batch.push_back(core::NodeSample{node.id, stream_t, dense});
        interval = sample->elapsed_s;
      }
    }
    if (batch.empty()) {
      break;
    }
    fleet.ingest_batch(batch);
    stream_t += interval;
    rounds += 1;

    const core::FleetSnapshot snap = fleet.snapshot(stream_t);
    Json line;
    line["event"] = "fleet";
    line["t_s"] = stream_t;
    line["nodes_reporting"] = snap.nodes_reporting;
    line["nodes_stale"] = snap.nodes_stale;
    line["nodes_degraded"] = snap.nodes_degraded;
    line["nodes_failed"] = snap.nodes_failed;
    line["total_watts"] = snap.total_watts;
    if (!std::isnan(snap.min_node_watts)) {
      line["min_node_watts"] = snap.min_node_watts;
      line["max_node_watts"] = snap.max_node_watts;
    }
    std::cout << line.dump(-1) << "\n";
    sink.maybe_flush(stream_t);
  }
  sink.flush(stream_t);
  log_message(LogLevel::Info, "fleet stream finished",
              {{"nodes", std::to_string(fleet_nodes)},
               {"rounds", std::to_string(rounds)},
               {"stream_seconds", format_double(stream_t, 2)}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pwx;

  std::string workload_name = "mgrid331";
  std::size_t threads = 24;
  std::size_t max_samples = 0;  // 0 = drain the stream
  double interval_s = 1.0;
  obs::ExportFormat format = obs::ExportFormat::Jsonl;
  std::optional<std::uint64_t> fault_seed;
  double intensity = 1.0;
  bool robust = true;
  bool spans = false;
  bool trace = false;
  const char* trace_replay = nullptr;
  const char* aggregate_file = nullptr;
  std::size_t fleet_nodes = 0;  // 0 = single-node mode

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--threads") {
      threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--samples") {
      max_samples = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--interval-s") {
      interval_s = std::strtod(next(), nullptr);
    } else if (arg == "--format") {
      const std::string v = next();
      if (v == "jsonl") {
        format = obs::ExportFormat::Jsonl;
      } else if (v == "prometheus") {
        format = obs::ExportFormat::Prometheus;
      } else if (v == "table") {
        format = obs::ExportFormat::Table;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--faults") {
      fault_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--intensity") {
      intensity = std::strtod(next(), nullptr);
    } else if (arg == "--no-robust") {
      robust = false;
    } else if (arg == "--log-json") {
      set_log_format(LogFormat::Json);
    } else if (arg == "--spans") {
      spans = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-replay") {
      trace_replay = next();
    } else if (arg == "--aggregate") {
      aggregate_file = next();
    } else if (arg == "--fleet") {
      fleet_nodes = std::strtoul(next(), nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (trace_replay != nullptr) {
      return run_trace_replay(trace_replay);
    }
    if (aggregate_file != nullptr) {
      return run_aggregate_replay(aggregate_file);
    }

    obs::set_enabled(true);
    std::vector<obs::SpanRecord> recorded;
    if (trace) {
      obs::TracerConfig tracer_config;
      tracer_config.ring_capacity = 8192;
      obs::tracer().start(tracer_config);
    }

    const auto workload = workloads::find_workload(workload_name);
    if (!workload) {
      std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
      return 1;
    }

    log_message(LogLevel::Info, "training model",
                {{"workload", workload_name}, {"threads", std::to_string(threads)}});
    core::SelectionOptions opt;
    opt.count = 6;
    opt.max_mean_vif = 8.0;
    core::FeatureSpec spec;
    spec.events = core::select_events(acquire::standard_selection_dataset(),
                                      pmc::haswell_ep_available_events(), opt)
                      .selected();
    core::PowerModel model =
        core::train_model(acquire::standard_training_dataset(), spec);

    if (fleet_nodes > 0) {
      obs::TelemetrySinkConfig sink_config;
      sink_config.interval_s = interval_s;
      sink_config.format = format;
      sink_config.include_spans = spans;
      obs::TelemetrySink sink(std::cout, sink_config);
      const int rc = run_fleet(std::move(model), fleet_nodes, *workload,
                               threads, max_samples, sink);
      if (trace) {
        drain_spans(recorded);
        obs::tracer().stop();
        obs::print_attribution_table(obs::attribute_latency(recorded),
                                     std::cerr);
      }
      return rc;
    }

    core::OnlineEstimator estimator(std::move(model), /*smoothing=*/0.3);

    const sim::Engine machine = sim::Engine::haswell_ep();
    sim::RunConfig rc;
    rc.threads = threads;
    rc.interval_s = 0.25;
    rc.seed = 2026;
    host::SimulatedCounterSource sim_source(machine, *workload, rc);

    core::CounterSource* source = &sim_source;
    std::unique_ptr<host::FaultyCounterSource> chaos;
    if (fault_seed.has_value()) {
      chaos = std::make_unique<host::FaultyCounterSource>(
          *source, fault::FaultPlan::escalating(*fault_seed, intensity));
      source = chaos.get();
      log_message(LogLevel::Info, "fault injection armed",
                  {{"seed", std::to_string(*fault_seed)},
                   {"intensity", format_double(intensity, 3)}});
    }
    std::unique_ptr<core::RobustCounterSource> hardened;
    if (robust) {
      hardened = std::make_unique<core::RobustCounterSource>(*source);
      source = hardened.get();
    }
    source->start(estimator.required_events());

    obs::TelemetrySinkConfig sink_config;
    sink_config.interval_s = interval_s;
    sink_config.format = format;
    sink_config.include_spans = spans;
    obs::TelemetrySink sink(std::cout, sink_config);

    double stream_t = 0.0;
    std::size_t produced = 0;
    while (max_samples == 0 || produced < max_samples) {
      std::optional<core::CounterSample> sample;
      double estimate = 0.0;
      {
        // Root span per sample: the guarded estimate (and any health
        // transitions it causes) become its children in the trace.
        PWX_SPAN("monitor.sample");
        sample = source->read();
        if (sample.has_value()) {
          estimate = estimator.estimate_guarded(*sample);
          obs::span_attr("watts", estimate);
        }
      }
      if (!sample.has_value()) {
        break;
      }
      stream_t += sample->elapsed_s;
      produced += 1;

      Json line;
      line["event"] = "estimate";
      line["t_s"] = stream_t;
      line["watts"] = estimate;
      line["measured_watts"] = sim_source.last_interval_power();
      line["health"] = std::string(core::health_name(estimator.health()));
      if (hardened) {
        line["source_health"] =
            std::string(core::health_name(hardened->health()));
      }
      std::cout << line.dump(-1) << "\n";
      if (trace) {
        drain_spans(recorded);
      }
      sink.maybe_flush(stream_t);
    }
    sink.flush(stream_t);
    if (trace) {
      drain_spans(recorded);
      obs::tracer().stop();
      obs::print_attribution_table(obs::attribute_latency(recorded),
                                   std::cerr);
    }

    log_message(LogLevel::Info, "stream finished",
                {{"samples", std::to_string(produced)},
                 {"stream_seconds", format_double(stream_t, 2)},
                 {"flushes", std::to_string(sink.flushes())}});
    if (chaos) {
      for (const auto& [kind, count] : chaos->injected()) {
        log_message(LogLevel::Info, "fault injected",
                    {{"kind", kind}, {"count", std::to_string(count)}});
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
