# Empty dependencies file for repro_fig6.
# This may be replaced when dependencies are built.
