// Streaming runtime power estimation.
//
// This is the deployment side of the paper's models: a CounterSource
// delivers periodic counter/voltage samples (real perf_event hardware via
// pwx::host, or the simulator), and the OnlineEstimator turns each sample
// into a power estimate with optional exponential smoothing. The estimator
// only needs the counters of the trained model — on Haswell the paper's six
// events fit into a single hardware event set, so runtime estimation needs
// no multiplexing.
//
// Internally every estimate runs on the compiled ModelLayout (core/dense.hpp):
// map-keyed CounterSamples are converted to the layout's dense slot order
// once per call, and the model evaluation is a flat coefficient dot product.
// Callers on the hot path (FleetEstimator, batch ingestion) skip the
// conversion by passing DenseSamples directly; both paths are bit-identical.
//
// The model itself lives in an immutable core::PublishedModel. An estimator
// constructed from a plain PowerModel is pinned to that model forever; one
// constructed from a shared core::LayoutEpoch adopts every newly published
// model at the next estimate call — the adoption check is a single relaxed
// atomic generation compare, so the estimate path never takes a lock (see
// core/epoch.hpp for the swap protocol).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/dense.hpp"
#include "core/dense_kernels.hpp"
#include "core/epoch.hpp"
#include "core/health.hpp"
#include "core/model.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

/// One periodic reading from a counter source.
struct CounterSample {
  double elapsed_s = 0;                     ///< interval covered by the counts
  double frequency_ghz = 0;                 ///< operating frequency
  double voltage = 0;                       ///< core VDD readout
  std::map<pmc::Preset, double> counts;     ///< event counts over the interval
};

/// Abstract source of counter samples.
class CounterSource {
public:
  virtual ~CounterSource() = default;

  /// Presets this source can deliver.
  virtual std::vector<pmc::Preset> available_events() const = 0;

  /// Begin counting the given presets; throws when unsupported.
  virtual void start(const std::vector<pmc::Preset>& events) = 0;

  /// Read-and-reset: counts since the previous read. Returns nullopt when
  /// the source is exhausted (simulated runs end; hardware never does).
  virtual std::optional<CounterSample> read() = 0;
};

/// Output guards of the estimator's hardened path (estimate_guarded).
struct EstimatorGuards {
  double min_watts = 0.0;      ///< estimates clamped to [min, max]
  double max_watts = 2000.0;   ///< generous bound for a 2-socket node
  /// Consecutive invalid samples tolerated while holding the last good
  /// estimate (DEGRADED); one more and the estimator reports FAILED.
  std::size_t max_consecutive_invalid = 5;
};

/// Per-stream state of the guarded estimation path: smoothing accumulator,
/// held last-good estimate, and degradation bookkeeping. One per estimate
/// stream — the OnlineEstimator owns one; the FleetEstimator owns one per
/// node (sharing a single ModelLayout), which is what makes a node's state
/// a few dozen bytes instead of a PowerModel copy.
struct GuardedState {
  std::optional<double> smoothed;
  std::optional<double> last_good;
  std::size_t consecutive_invalid = 0;
  HealthState health = HealthState::Ok;

  void reset() { *this = GuardedState{}; }
};

/// One step of the guarded estimation state machine on a dense sample:
/// never throws on bad data, never emits NaN/Inf or a value outside the
/// guard range; invalid samples hold the last good estimate and degrade
/// `state.health` (FAILED after guards.max_consecutive_invalid misses in a
/// row), a valid sample restores OK. Shared by OnlineEstimator and
/// FleetEstimator so every guarded path has identical semantics and
/// telemetry.
double guarded_estimate_step(const ModelLayout& layout, double smoothing,
                             const EstimatorGuards& guards,
                             const DenseSample& sample, GuardedState& state);

/// The guard/clamp/degradation lane of guarded_estimate_step on a
/// *precomputed* raw prediction: `valid` is try_predict's verdict and `raw`
/// its value (ignored when invalid). This is the one definition of the
/// guarded state machine — the scalar step and every batched path
/// (guarded_estimate_batch, the fleet's fused ingest) fold through it, so
/// outputs, state transitions, telemetry counters, and flight-recorder
/// triggers are identical however the prediction was computed.
double guarded_fold_raw(double smoothing, const EstimatorGuards& guards,
                        bool valid, double raw, GuardedState& state);

/// Batched guarded estimation: one vector predict over the batch, then the
/// guarded state machine replayed per lane in lane order. Outputs, the
/// final GuardedState, telemetry, and flight triggers are bit-identical to
/// batch.size() sequential guarded_estimate_step calls on the same samples.
/// A batch whose slot count disagrees with `layout` (an epoch swap between
/// batch build and call) estimates every lane as invalid — the same verdict
/// scalar conversion would reach sample by sample. `out` needs
/// batch.size() entries; `health_out`, when non-empty, receives
/// state.health after each lane (for callers that track per-sample health).
/// Also feeds the estimate.batch.samples / estimate.batch.lanes_invalid
/// counters that serving monitors derive estimates/sec from.
void guarded_estimate_batch(const ModelLayout& layout, double smoothing,
                            const EstimatorGuards& guards,
                            const SampleBatch& batch, GuardedState& state,
                            std::span<double> out,
                            std::span<HealthState> health_out = {});

/// Count `samples` batch lanes (of which `invalid` failed validation)
/// against the estimate.batch.* counters. No-op when telemetry is off.
/// Exposed for batched paths that fold lanes themselves (fleet ingest).
void note_batch_lanes(std::size_t samples, std::size_t invalid);

/// Turns counter samples into power estimates using a trained model.
class OnlineEstimator {
public:
  /// `smoothing` in [0,1): exponential smoothing factor applied to the
  /// estimate stream (0 = none). The model is pinned: this estimator never
  /// changes models.
  explicit OnlineEstimator(PowerModel model, double smoothing = 0.0,
                           EstimatorGuards guards = {});

  /// Epoch-bound estimator: serves the epoch's current publication and
  /// adopts every later publish() at the next estimate call (lock-free
  /// generation check per estimate; re-acquisition only on an actual swap).
  /// Smoothing state and the guarded health machine survive a swap, so the
  /// estimate stream stays continuous across retrains.
  explicit OnlineEstimator(std::shared_ptr<LayoutEpoch> epoch,
                           double smoothing = 0.0, EstimatorGuards guards = {});

  /// Estimate power for one sample. Strict: throws InvalidArgument when the
  /// sample is degenerate (non-positive elapsed time, missing events, ...).
  double estimate(const CounterSample& sample);

  /// Strict estimate on an already-dense sample (layout slot order).
  double estimate(const DenseSample& sample);

  /// Hardened path: never throws on bad data, never emits NaN/Inf or a
  /// value outside the guard range. Invalid samples (non-finite or
  /// non-positive elapsed/frequency/voltage, missing or non-finite event
  /// counts, or a non-finite model output) hold the last good estimate and
  /// degrade health(); after guards.max_consecutive_invalid misses in a row
  /// the estimator reports FAILED (output still held and clamped). A valid
  /// sample restores health to OK.
  double estimate_guarded(const CounterSample& sample);

  /// Hardened path on an already-dense sample.
  double estimate_guarded(const DenseSample& sample);

  /// Batched hardened path: every lane of `batch` (built against layout())
  /// runs through the same guarded state machine in lane order —
  /// bit-identical to batch.size() sequential estimate_guarded calls,
  /// amortizing the model evaluation across SIMD lanes. If an epoch swap
  /// adopted a layout with a different slot count since the batch was
  /// built, every lane is treated as invalid (held estimate, degraded
  /// health) — build the batch right before the call. `health_out`, when
  /// non-empty, receives health() after each lane.
  void estimate_batch_guarded(const SampleBatch& batch, std::span<double> out,
                              std::span<HealthState> health_out = {});

  /// Convert-and-estimate: adopts any pending hot swap first, then converts
  /// the map-keyed samples against the adopted layout into `scratch`
  /// (reused across calls, guarded conversion) and runs the batched path —
  /// the swap race of the SampleBatch overload cannot happen here.
  void estimate_batch_guarded(std::span<const CounterSample> samples,
                              SampleBatch& scratch, std::span<double> out,
                              std::span<HealthState> health_out = {});

  /// Health of the guarded estimate stream.
  HealthState health() const { return state_.health; }
  /// Consecutive invalid samples absorbed since the last good one — the
  /// staleness bound of the held estimate.
  std::size_t consecutive_invalid() const { return state_.consecutive_invalid; }

  /// The model's event requirements (what to pass to CounterSource::start).
  /// Epoch-bound estimators: valid until the next estimate call adopts a
  /// newly published model (same caveat for model()/layout()).
  const std::vector<pmc::Preset>& required_events() const {
    return current_->model.spec().events;
  }

  const PowerModel& model() const { return current_->model; }
  /// The compiled layout (to build DenseSamples for the dense overloads).
  const ModelLayout& layout() const { return current_->layout; }
  /// The currently served publication (shared ownership: survives swaps).
  std::shared_ptr<const PublishedModel> publication() const { return current_; }
  /// Generation of the currently served publication (1 when model-pinned).
  std::uint64_t generation() const { return current_->generation; }
  const EstimatorGuards& guards() const { return guards_; }

  /// Reset the smoothing and degradation state.
  void reset();

private:
  double smooth(double raw);
  /// Adopt a newly published model if the bound epoch swapped (one relaxed
  /// atomic compare when it did not).
  void maybe_adopt();

  std::shared_ptr<LayoutEpoch> epoch_;             ///< null when model-pinned
  std::shared_ptr<const PublishedModel> current_;  ///< never null
  double smoothing_;
  EstimatorGuards guards_;
  GuardedState state_;
  DenseSample scratch_;  ///< conversion buffer: map overloads allocate nothing
};

}  // namespace pwx::core
