// Pearson-correlation analysis of counters against power (paper Section V,
// Table III and Figure 6).
#pragma once

#include <vector>

#include "acquire/dataset.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

/// PCC of one counter's per-cycle rate with power over a dataset.
struct CounterCorrelation {
  pmc::Preset preset = pmc::Preset::kCount;
  double pcc = 0.0;
};

/// PCC for each given preset (Equation 2 via stats::pearson).
std::vector<CounterCorrelation> correlate_with_power(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& presets);

}  // namespace pwx::core
