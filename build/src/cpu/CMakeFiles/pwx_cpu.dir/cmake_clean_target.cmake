file(REMOVE_RECURSE
  "libpwx_cpu.a"
)
