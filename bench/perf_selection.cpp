// Performance of Algorithm 1: the greedy search fits O(#candidates x
// #selected) regression models; this bench measures the cost per selection
// run against candidate-set size.
#include <benchmark/benchmark.h>

#include "core/selection.hpp"
#include "repro_common.hpp"

namespace {

using namespace pwx;

void BM_SelectEvents(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const acquire::Dataset& dataset = acquire::standard_selection_dataset();
  const std::vector<pmc::Preset> candidates = pmc::haswell_ep_available_events();
  core::SelectionOptions opt;
  opt.count = count;
  for (auto _ : state) {
    const auto result = core::select_events(dataset, candidates, opt);
    benchmark::DoNotOptimize(result.steps.back().r_squared);
  }
}
BENCHMARK(BM_SelectEvents)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_SelectEventsWithVifVeto(benchmark::State& state) {
  const acquire::Dataset& dataset = acquire::standard_selection_dataset();
  const std::vector<pmc::Preset> candidates = pmc::haswell_ep_available_events();
  core::SelectionOptions opt;
  opt.count = static_cast<std::size_t>(state.range(0));
  opt.max_mean_vif = 8.0;
  for (auto _ : state) {
    const auto result = core::select_events(dataset, candidates, opt);
    benchmark::DoNotOptimize(result.steps.back().r_squared);
  }
}
BENCHMARK(BM_SelectEventsWithVifVeto)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_MeanVifOfSelected(benchmark::State& state) {
  const acquire::Dataset& dataset = acquire::standard_selection_dataset();
  const auto events = bench::StandardPipeline::get().spec.events;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::selected_events_mean_vif(dataset, events));
  }
}
BENCHMARK(BM_MeanVifOfSelected);

// Cost against candidate-pool size at a fixed selection count: the scan is
// linear in the pool, so time should grow roughly linearly from 8 to the
// full 54 Haswell-EP presets.
void BM_SelectEventsByCandidates(benchmark::State& state) {
  const auto n_candidates = static_cast<std::size_t>(state.range(0));
  const acquire::Dataset& dataset = acquire::standard_selection_dataset();
  std::vector<pmc::Preset> candidates = pmc::haswell_ep_available_events();
  candidates.resize(n_candidates);
  core::SelectionOptions opt;
  opt.count = 6;
  for (auto _ : state) {
    const auto result = core::select_events(dataset, candidates, opt);
    benchmark::DoNotOptimize(result.steps.back().r_squared);
  }
}
BENCHMARK(BM_SelectEventsByCandidates)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(54)
    ->Unit(benchmark::kMillisecond);

// Serial vs parallel gating scan on the same problem. The two must return
// identical SelectionStep sequences (scores come from candidate-independent
// exact refits with a serial argmax); this pair exists to measure the
// OpenMP overhead/benefit on the current machine.
void BM_SelectEventsScanMode(benchmark::State& state) {
  const acquire::Dataset& dataset = acquire::standard_selection_dataset();
  const std::vector<pmc::Preset> candidates = pmc::haswell_ep_available_events();
  core::SelectionOptions opt;
  opt.count = 6;
  opt.parallel_scan = state.range(0) != 0;
  for (auto _ : state) {
    const auto result = core::select_events(dataset, candidates, opt);
    benchmark::DoNotOptimize(result.steps.back().r_squared);
  }
  state.SetLabel(opt.parallel_scan ? "parallel" : "serial");
}
BENCHMARK(BM_SelectEventsScanMode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
