// Structured causal tracing: spans with identity, not just timing.
//
// PR 3's PWX_SPAN gave the pipeline an *aggregate* timing profile (per-path
// call counts and totals in SpanRegistry). This layer upgrades the same span
// sites into a real trace: every sampled span gets a TraceId/SpanId/parent
// linkage, monotonic start/end timestamps, and free-form attributes, and is
// recorded as a SpanRecord into a lock-free single-producer ring buffer owned
// by its thread. A collector (tools/pwx-ingestd --trace-out, pwx-monitor
// --trace, the tests) drains the rings and hands the records to the
// exporters in obs/trace_export.hpp (Chrome trace-event JSON for Perfetto,
// span JSONL, the latency-attribution table).
//
// Design points:
//
//   * Off path: one inline branch. When no Tracer session is active,
//     tracing_active() is a single relaxed atomic load and obs::Span does
//     nothing structured. Starting a session never requires re-instrumenting
//     a site.
//   * Sampling: the decision is made once per *trace* (at the root span) —
//     1-in-N roots by a deterministic counter — and children inherit it, so
//     a sampled trace is always complete and an unsampled one is free except
//     for the parent-stack bookkeeping.
//   * Deterministic IDs: trace and span ids come from a seeded splitmix64
//     sequence over an atomic counter. Single-threaded sections therefore
//     produce byte-identical id streams for a given seed, which is what lets
//     tests golden the exporters. The clock is injectable for the same
//     reason.
//   * Rings are bounded. A full ring drops the *newest* span and counts it
//     (TracerStats::spans_dropped); the collector can also see per-session
//     totals of started/sampled traces, so overflow is always accounted.
//
// The flight recorder (obs/flight.hpp) taps completed spans at end_span time
// when armed, independent of any collector, so a post-mortem dump always has
// the most recent spans even if nobody was draining.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace pwx::obs {

/// One span attribute (stringly typed; numeric helpers format on write).
struct SpanAttr {
  std::string key;
  std::string value;
};

/// One completed span as drained from a thread ring.
struct SpanRecord {
  std::uint64_t trace_id = 0;   ///< shared by every span of one causal trace
  std::uint64_t span_id = 0;    ///< unique per span
  std::uint64_t parent_id = 0;  ///< 0 = root span of its trace
  std::string name;             ///< the PWX_SPAN site name
  double start_s = 0.0;         ///< tracer-clock start timestamp
  double end_s = 0.0;           ///< tracer-clock end timestamp
  std::uint32_t thread = 0;     ///< dense per-session thread index
  std::vector<SpanAttr> attrs;

  double duration_s() const { return end_s - start_s; }
};

/// Tracer session parameters.
struct TracerConfig {
  /// Per-thread ring capacity in spans (rounded up to a power of two).
  std::size_t ring_capacity = 2048;
  /// Record 1-in-N root spans (and their whole subtree). 1 = everything.
  std::uint64_t sample_every = 1;
  /// Seed of the deterministic trace/span id sequence.
  std::uint64_t id_seed = 0;
  /// Span timestamp clock; defaults to obs::monotonic_s. Injected by tests
  /// so span trees are golden-able.
  std::function<double()> clock;
};

/// Session counters (drained spans are counted by the rings themselves).
struct TracerStats {
  std::uint64_t traces_started = 0;  ///< root spans seen while active
  std::uint64_t traces_sampled = 0;  ///< root spans that passed sampling
  std::uint64_t spans_recorded = 0;  ///< spans pushed into rings
  std::uint64_t spans_dropped = 0;   ///< spans lost to full rings
};

namespace detail {
extern std::atomic<bool> g_tracing;
}  // namespace detail

/// True while a Tracer session is active — the one-branch gate every span
/// site checks before doing any structured-tracing work.
inline bool tracing_active() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Process-wide tracing collector. start()/stop() bracket a session; spans
/// recorded by any thread between them are drained with drain(). Thread-safe:
/// producers are lock-free, drain/stats take the lane-registry mutex.
class Tracer {
public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Begin a session (idempotent: an active session is stopped first, its
  /// undrained spans discarded). Resets ids, sampling, and stats.
  void start(TracerConfig config = {});

  /// End the session: tracing_active() turns false, rings stay drainable
  /// until the next start().
  void stop();

  bool active() const { return tracing_active(); }

  /// Move all completed spans out of every thread ring, in per-thread FIFO
  /// order (threads in registration order). Callable during or after a
  /// session.
  std::vector<SpanRecord> drain();

  TracerStats stats() const;

  /// The session clock (monotonic_s when none was injected).
  double now() const;

  const TracerConfig& config() const { return config_; }

private:
  friend struct TracerAccess;

  TracerConfig config_;
  std::uint64_t session_ = 0;
};

/// The process-wide tracer (sibling of obs::registry() / obs::spans()).
Tracer& tracer();

/// TraceId of the current thread's innermost *sampled* span, 0 when none.
/// This is what histogram exemplars attach (obs::Histogram::observe_exemplar)
/// so a slow latency bucket links back to a concrete trace.
std::uint64_t current_trace_id();

/// SpanId of the current thread's innermost sampled span, 0 when none.
std::uint64_t current_span_id();

/// Attach an attribute to the current thread's innermost sampled span.
/// No-ops (one branch) when tracing is off or the trace is unsampled.
void span_attr(std::string_view key, std::string_view value);
void span_attr(std::string_view key, double value);
void span_attr(std::string_view key, std::uint64_t value);

/// Fixed-width lower-case hex rendering of a trace/span id ("00c0ffee...").
std::string format_span_id(std::uint64_t id);

namespace trace_detail {
/// Called by obs::Span when tracing_active(). Pushes a parent-stack frame
/// (allocating ids and the sampling decision at the root) and returns true —
/// the caller must balance with end_span(). Returns false when tracing shut
/// down between the caller's check and the call.
bool begin_span(std::string_view name);
/// Pop the frame begin_span pushed; emits the SpanRecord when sampled.
void end_span();
/// Registered by the flight recorder (obs/flight.hpp) while armed: called
/// with every completed sampled span. nullptr disarms. While a tap is set,
/// tracing_active() stays true even without a Tracer session, so the flight
/// ring keeps filling with no collector attached.
void set_flight_tap(void (*tap)(const SpanRecord&));
}  // namespace trace_detail

}  // namespace pwx::obs
