// Ordinary least squares with heteroscedasticity-consistent covariance
// estimators (HC0–HC3), mirroring python3 statsmodels' `OLS(...).fit(
// cov_type="HC3")` which the paper uses for Equation 1.
//
// The fit goes through a Householder QR of the design matrix; the hat
// diagonal h_ii needed by HC2/HC3 comes from the thin Q factor
// (h_ii = Σ_j Q_ij²), and (XᵀX)⁻¹ = R⁻¹ R⁻ᵀ.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace pwx::regress {

/// Covariance estimator choice.
enum class CovarianceType {
  NonRobust,  ///< classical sigma² (XᵀX)⁻¹
  HC0,        ///< White: weights e_i²
  HC1,        ///< HC0 scaled by n/(n-k)
  HC2,        ///< weights e_i² / (1 - h_ii)
  HC3,        ///< weights e_i² / (1 - h_ii)²  — the paper's choice
};

/// Options controlling the fit.
struct OlsOptions {
  bool add_intercept = true;
  CovarianceType cov_type = CovarianceType::NonRobust;
};

/// Full result of an OLS fit.
struct OlsResult {
  std::vector<double> beta;          ///< coefficients (intercept first if added)
  std::vector<double> standard_error;///< per-coefficient SE under cov_type
  std::vector<double> t_statistic;   ///< beta / SE
  std::vector<double> p_value;       ///< two-sided Student-t p-values
  std::vector<double> fitted;        ///< X beta
  std::vector<double> residuals;     ///< y - X beta
  std::vector<double> leverage;      ///< hat diagonal h_ii
  la::Matrix covariance;             ///< coefficient covariance matrix
  double r_squared = 0.0;
  double adj_r_squared = 0.0;
  double sigma2 = 0.0;               ///< residual variance SSR/(n-k)
  double f_statistic = 0.0;          ///< overall regression F (non-robust)
  double f_p_value = 1.0;
  std::size_t n_observations = 0;
  std::size_t n_parameters = 0;      ///< columns incl. intercept
  bool has_intercept = false;
  CovarianceType cov_type = CovarianceType::NonRobust;

  /// 1-alpha confidence interval for coefficient j.
  std::pair<double, double> confidence_interval(std::size_t j, double alpha = 0.05) const;

  /// Predict for a new design matrix with the same column layout as the fit
  /// input (intercept is handled internally when the fit added one).
  std::vector<double> predict(const la::Matrix& x) const;

  /// Human-readable summary (statsmodels-flavoured), for examples/benches.
  std::string summary(const std::vector<std::string>& names = {}) const;
};

/// Fit y ~ X (plus intercept when requested). Requires n > k and full column
/// rank; throws pwx::NumericalError otherwise.
OlsResult fit_ols(const la::Matrix& x, std::span<const double> y,
                  const OlsOptions& options = {});

}  // namespace pwx::regress
