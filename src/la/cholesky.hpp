// Cholesky factorization of symmetric positive-definite matrices.
//
// Used for covariance sandwich products and as a fast path when the Gram
// matrix is known to be well conditioned (e.g. VIF auxiliary regressions on
// standardized predictors).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::la {

/// Lower-triangular Cholesky factor L with A = L Lᵀ.
class CholeskyDecomposition {
public:
  /// Factor a symmetric positive-definite matrix. Throws pwx::NumericalError
  /// if a non-positive pivot is encountered.
  explicit CholeskyDecomposition(const Matrix& a);

  /// Solve A x = b.
  std::vector<double> solve(std::span<const double> b) const;

  /// Inverse of A (n x n) via forward/back substitution on the identity.
  Matrix inverse() const;

  /// The factor L.
  const Matrix& l() const { return l_; }

  /// log(det A) = 2 Σ log l_ii; useful for information criteria.
  double log_determinant() const;

private:
  Matrix l_;
};

}  // namespace pwx::la
