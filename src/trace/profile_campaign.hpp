// Batch phase-profile ingestion: many trace files -> merged phase profiles.
//
// The paper's calibration campaign leaves one OTF2 trace per (workload,
// frequency, thread-count, counter-group) run; post-processing reduces the
// whole directory to one phase-profile table. ProfileCampaign does that
// reduction in a single call: every file is read and profiled independently
// (OpenMP-parallel across files when enabled), then profiles with the same
// (workload, phase, frequency, threads) key are merged across runs with
// elapsed-time weights — exactly what a serial read/profile/merge loop over
// the same files produces, bit for bit, regardless of thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/phase_profile.hpp"

namespace pwx::trace {

struct ProfileCampaignOptions {
  bool parallel = true;  ///< profile input files concurrently (OpenMP)
  bool merge = true;     ///< merge same-key profiles across runs
  bool mmap = false;     ///< zero-copy mapped ingestion (trace/mapped.hpp);
                         ///< v2/v3 files fall back to the buffered reader
  bool verify_checksum = true;  ///< verify checksum footers; only the mapped
                                ///< path can skip them (buffered always does)
};

/// Accumulates trace-file paths and reduces them to phase profiles.
class ProfileCampaign {
public:
  explicit ProfileCampaign(ProfileCampaignOptions options = {})
      : options_(options) {}

  void add_file(std::string path) { paths_.push_back(std::move(path)); }
  void add_files(const std::vector<std::string>& paths) {
    paths_.insert(paths_.end(), paths.begin(), paths.end());
  }

  std::size_t size() const { return paths_.size(); }
  const std::vector<std::string>& paths() const { return paths_; }

  /// Read + profile every file, then merge across runs. The result is
  /// deterministic: per-file profiles are combined in add order (first
  /// appearance of a key fixes its output position), independent of how the
  /// per-file stage was scheduled. Errors rethrow with the offending path
  /// prepended; when several files fail, the lowest-index failure wins.
  std::vector<PhaseProfile> run() const;

private:
  ProfileCampaignOptions options_;
  std::vector<std::string> paths_;
};

/// One-shot convenience wrapper around ProfileCampaign.
std::vector<PhaseProfile> profile_trace_files(const std::vector<std::string>& paths,
                                              ProfileCampaignOptions options = {});

/// The campaign's stage-2 reduction as a standalone step: merge same-key
/// profiles across the per-file groups, keys ordered by first appearance
/// walking the groups in input order. ProfileCampaign::run and the
/// incremental engine (trace/incremental.hpp) both reduce through this one
/// function, which is what makes a streamed campaign bit-identical to the
/// cold batch over the same files.
std::vector<PhaseProfile> merge_first_appearance(
    std::vector<std::vector<PhaseProfile>> per_file);

}  // namespace pwx::trace
