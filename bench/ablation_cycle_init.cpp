// Ablation — cycle-counter initialization of Algorithm 1.
//
// Walker et al. seed the selected set with the cycle counter; the paper
// drops that ("initializing the events with the processor cycle counter
// neither improves nor worsens the accuracy of the resulting model
// significantly"). This bench runs both variants and compares selection
// trajectories and 10-fold CV accuracy.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/validate.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Ablation: cycle-counter initialization (Walker et al.)",
                      "initializing with TOT_CYC neither improves nor worsens "
                      "accuracy significantly");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();

  core::SelectionOptions with_init;
  with_init.count = 6;
  with_init.max_mean_vif = 8.0;
  with_init.init_with_cycle_counter = true;
  const auto initialized =
      core::select_events(*p.selection, pmc::haswell_ep_available_events(), with_init);

  TablePrinter table({"step", "no init (paper)", "R2", "cycle init (Walker)", "R2 "});
  for (std::size_t i = 0; i < 6; ++i) {
    table.row({std::to_string(i + 1),
               std::string(pmc::preset_name(p.vetoed.steps[i].event)),
               format_double(p.vetoed.steps[i].r_squared, 4),
               std::string(pmc::preset_name(initialized.steps[i].event)),
               format_double(initialized.steps[i].r_squared, 4)});
  }
  table.print(std::cout);

  core::FeatureSpec spec_init;
  spec_init.events = initialized.selected();
  const auto cv_plain =
      core::k_fold_cross_validation(*p.training, p.spec, 10, bench::kCvSeed);
  const auto cv_init =
      core::k_fold_cross_validation(*p.training, spec_init, 10, bench::kCvSeed);

  std::puts("\n10-fold CV comparison:");
  TablePrinter cv({"variant", "mean R2", "mean MAPE [%]"});
  cv.row({"no initialization (paper)", format_double(cv_plain.mean.r_squared, 4),
          format_double(cv_plain.mean.mape, 2)});
  cv.row({"cycle-counter init (Walker)", format_double(cv_init.mean.r_squared, 4),
          format_double(cv_init.mean.mape, 2)});
  cv.print(std::cout);

  std::printf("\nshape check: MAPE difference %.2f pp — consistent with the "
              "paper's\nfinding that the initialization is immaterial.\n",
              cv_init.mean.mape - cv_plain.mean.mape);
  return 0;
}
