#include "core/low_validate.hpp"

#include <span>

#include "common/error.hpp"
#include "core/features.hpp"
#include "regress/fast_fit.hpp"
#include "stats/metrics.hpp"

namespace pwx::core {

namespace {

std::vector<double> gather(const std::vector<double>& values,
                           std::span<const std::size_t> indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    out.push_back(values[i]);
  }
  return out;
}

}  // namespace

LowoSummary leave_one_workload_out(const acquire::Dataset& dataset,
                                   const FeatureSpec& spec) {
  const std::vector<std::string> names = dataset.workload_names();
  PWX_REQUIRE(names.size() >= 2, "LOWO needs at least two workloads");

  // One design build for all holdouts; each round slices its train/validate
  // rows out of the shared matrix (row order matches filter/exclude_workloads,
  // which keep the dataset's row order).
  const la::Matrix x = build_features(dataset, spec);
  const std::vector<double> y = dataset.power();

  LowoSummary summary;
  double mape_sum = 0.0;
  std::size_t valid = 0;
  for (const std::string& name : names) {
    WorkloadHoldout holdout;
    holdout.workload = name;
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> validate_rows;
    for (std::size_t r = 0; r < dataset.size(); ++r) {
      if (dataset.rows()[r].workload == name) {
        validate_rows.push_back(r);
      } else {
        train_rows.push_back(r);
      }
    }
    holdout.rows = validate_rows.size();
    try {
      const regress::FastOls fit =
          regress::fit_ols_fast(x.select_rows(train_rows), gather(y, train_rows));
      const std::vector<double> predicted = fit.predict(x.select_rows(validate_rows));
      const std::vector<double> actual = gather(y, validate_rows);
      holdout.mape = stats::mape(actual, predicted);
      double bias = 0.0;
      for (std::size_t i = 0; i < actual.size(); ++i) {
        bias += (predicted[i] - actual[i]) / actual[i];
      }
      holdout.bias = bias / static_cast<double>(actual.size());
      mape_sum += holdout.mape;
      valid += 1;
      if (holdout.mape > summary.worst_mape) {
        summary.worst_mape = holdout.mape;
        summary.worst_workload = name;
      }
    } catch (const NumericalError&) {
      holdout.fit_failed = true;
    }
    summary.holdouts.push_back(std::move(holdout));
  }
  PWX_CHECK(valid > 0, "every LOWO fit failed");
  summary.mean_mape = mape_sum / static_cast<double>(valid);
  return summary;
}

}  // namespace pwx::core
