# Empty compiler generated dependencies file for pwx_core.
# This may be replaced when dependencies are built.
