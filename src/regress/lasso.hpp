// LASSO (L1-regularized) regression via cyclic coordinate descent.
//
// An alternative event-selection mechanism for the paper's future-work
// question ("different statistical algorithms ... for selecting PMC
// events"): the L1 penalty zeroes whole coefficients, so the set of
// non-zero coefficients along the regularization path *is* a counter
// selection — one that handles correlated candidates gracefully where greedy
// forward selection faces the CA_SNP dilemma.
//
// Standard formulation: predictors standardized, response centered, penalty
// not applied to the intercept; minimizes
//   (1/2n) ||y - Xb||² + λ ||b||₁.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::regress {

/// Result of one LASSO fit.
struct LassoResult {
  std::vector<double> beta;       ///< coefficients (intercept first), original scale
  double lambda = 0.0;
  double r_squared = 0.0;
  std::size_t nonzero = 0;        ///< non-zero coefficients excluding the intercept
  std::size_t iterations = 0;     ///< coordinate-descent sweeps used

  std::vector<double> predict(const la::Matrix& x) const;
  /// Indices of the active (non-zero) predictors.
  std::vector<std::size_t> active_set() const;
};

/// Fit with a fixed penalty. `tol` is the max coefficient change (in
/// standardized units) that terminates the sweeps.
LassoResult fit_lasso(const la::Matrix& x, std::span<const double> y, double lambda,
                      double tol = 1e-8, std::size_t max_sweeps = 10000);

/// Smallest penalty that zeroes every coefficient (path start).
double lasso_lambda_max(const la::Matrix& x, std::span<const double> y);

/// Fit a decreasing log-spaced path of `count` penalties from lambda_max
/// down to `ratio * lambda_max` with warm starts; returns the fits in path
/// order. Useful for picking a target sparsity ("give me ~6 counters").
std::vector<LassoResult> lasso_path(const la::Matrix& x, std::span<const double> y,
                                    std::size_t count = 40, double ratio = 1e-3);

}  // namespace pwx::regress
