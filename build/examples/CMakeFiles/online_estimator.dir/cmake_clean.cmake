file(REMOVE_RECURSE
  "CMakeFiles/online_estimator.dir/online_estimator.cpp.o"
  "CMakeFiles/online_estimator.dir/online_estimator.cpp.o.d"
  "online_estimator"
  "online_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
