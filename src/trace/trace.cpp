#include "trace/trace.hpp"

#include <charconv>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pwx::trace {

std::uint32_t Trace::define_metric(MetricDefinition definition) {
  PWX_REQUIRE(!definition.name.empty(), "metric needs a name");
  PWX_REQUIRE(metric_by_name_.find(definition.name) == metric_by_name_.end(),
              "duplicate metric '", definition.name, "'");
  const auto index = static_cast<std::uint32_t>(metrics_.size());
  metric_by_name_.emplace(definition.name, index);
  metrics_.push_back(std::move(definition));
  return index;
}

std::uint32_t Trace::metric_index(const std::string& name) const {
  const auto it = metric_by_name_.find(name);
  PWX_REQUIRE(it != metric_by_name_.end(), "unknown metric '", name, "'");
  return it->second;
}

bool Trace::has_metric(const std::string& name) const {
  return metric_by_name_.find(name) != metric_by_name_.end();
}

std::uint64_t Trace::event_time(const Event& event) {
  return std::visit([](const auto& e) { return e.time_ns; }, event);
}

void Trace::check_time(std::uint64_t time_ns) {
  PWX_REQUIRE(time_ns >= last_time_ns_, "events must be chronological: ", time_ns,
              " after ", last_time_ns_);
  last_time_ns_ = time_ns;
}

void Trace::append(RegionEnter event) {
  check_time(event.time_ns);
  events_.push_enter(event.time_ns, events_.regions.intern(event.region));
}

void Trace::append(RegionExit event) {
  check_time(event.time_ns);
  events_.push_exit(event.time_ns, events_.regions.intern(event.region));
}

void Trace::append(MetricEvent event) {
  check_time(event.time_ns);
  PWX_REQUIRE(event.metric < metrics_.size(), "metric index ", event.metric,
              " not defined");
  events_.push_metric(event.time_ns, event.metric, event.value);
}

void Trace::append(const Event& event) {
  std::visit([this](const auto& e) { append(e); }, event);
}

void Trace::adopt_columns(EventColumns columns) {
  PWX_REQUIRE(events_.empty(), "adopt_columns requires an empty event stream");
  const std::size_t n = columns.size();
  PWX_REQUIRE(columns.kinds.size() == n && columns.ids.size() == n &&
                  columns.values.size() == n,
              "event columns must have equal lengths");
  std::uint64_t last = last_time_ns_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t t = columns.times[i];
    PWX_REQUIRE(t >= last, "events must be chronological: ", t, " after ", last);
    last = t;
    switch (static_cast<EventKind>(columns.kinds[i])) {
      case EventKind::Enter:
      case EventKind::Exit:
        PWX_REQUIRE(columns.ids[i] < columns.regions.size(), "region id ",
                    columns.ids[i], " not interned");
        break;
      case EventKind::Metric:
        PWX_REQUIRE(columns.ids[i] < metrics_.size(), "metric index ",
                    columns.ids[i], " not defined");
        break;
      default:
        PWX_REQUIRE(false, "unknown event kind ", static_cast<int>(columns.kinds[i]));
    }
  }
  last_time_ns_ = last;
  events_ = std::move(columns);
}

void Trace::set_attribute(const std::string& key, const std::string& value) {
  attributes_[key] = value;
}

void Trace::set_attribute(const std::string& key, double value) {
  attributes_[key] = format_double(value, 9);
}

const std::string& Trace::attribute(const std::string& key) const {
  const auto it = attributes_.find(key);
  PWX_REQUIRE(it != attributes_.end(), "missing trace attribute '", key, "'");
  return it->second;
}

double Trace::attribute_as_double(const std::string& key) const {
  const std::string& text = attribute(key);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  PWX_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
              "trace attribute '", key, "' is not numeric: '", text, "'");
  return value;
}

}  // namespace pwx::trace
