// Unit and property tests for the linear algebra module.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/cholesky.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"
#include "la/solve.hpp"
#include "la/svd.hpp"

namespace pwx::la {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
    }
  }
  return a;
}

double max_abs_diff(const Matrix& a, const Matrix& b) { return (a - b).max_abs(); }

// ---------------------------------------------------------------- matrix

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerListAndRaggedRejection) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, IdentityProperties) {
  const Matrix i = Matrix::identity(4);
  const Matrix m{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 1, 2, 3}, {4, 5, 6, 7}};
  EXPECT_NEAR(max_abs_diff(i * m, m), 0.0, 1e-15);
  EXPECT_NEAR(max_abs_diff(m * i, m), 0.0, 1e-15);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(1);
  const Matrix a = random_matrix(5, 3, rng);
  EXPECT_NEAR(max_abs_diff(a.transposed().transposed(), a), 0.0, 0.0);
}

TEST(Matrix, MultiplicationMatchesManual) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplicationDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, MatVecAndTransposedMatVecAgreeWithExplicitTranspose) {
  Rng rng(2);
  const Matrix a = random_matrix(6, 4, rng);
  std::vector<double> v(4);
  std::vector<double> w(6);
  for (auto& x : v) x = rng.normal();
  for (auto& x : w) x = rng.normal();
  const auto av = a.multiply(v);
  const auto atw = a.multiply_transposed(w);
  const auto atw_ref = a.transposed().multiply(w);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(atw[i], atw_ref[i], 1e-12);
  }
  EXPECT_EQ(av.size(), 6u);
}

TEST(Matrix, GramEqualsAtA) {
  Rng rng(3);
  const Matrix a = random_matrix(7, 3, rng);
  EXPECT_NEAR(max_abs_diff(a.gram(), a.transposed() * a), 0.0, 1e-12);
}

TEST(Matrix, SelectColumnsAndRows) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const std::vector<std::size_t> cols{2, 0};
  const Matrix sub = a.select_columns(cols);
  EXPECT_DOUBLE_EQ(sub(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub(1, 1), 4.0);
  const std::vector<std::size_t> rows{1};
  const Matrix rsub = a.select_rows(rows);
  EXPECT_EQ(rsub.rows(), 1u);
  EXPECT_DOUBLE_EQ(rsub(0, 2), 6.0);
}

TEST(Matrix, SelectOutOfRangeThrows) {
  const Matrix a(2, 2);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(a.select_columns(bad), InvalidArgument);
  EXPECT_THROW(a.select_rows(bad), InvalidArgument);
}

TEST(Matrix, AppendColumn) {
  Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> c{9, 8};
  a.append_column(c);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_DOUBLE_EQ(a(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
}

TEST(Matrix, AppendColumnToEmpty) {
  Matrix a;
  const std::vector<double> c{1, 2, 3};
  a.append_column(c);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 1u);
}

TEST(Matrix, Norm2IsRobustToExtremeScales) {
  const std::vector<double> tiny{1e-200, 1e-200};
  EXPECT_NEAR(norm2(tiny), std::sqrt(2.0) * 1e-200, 1e-210);
  const std::vector<double> huge{3e200, 4e200};
  EXPECT_NEAR(norm2(huge), 5e200, 1e190);
}

TEST(Matrix, DotSizeMismatchThrows) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1, 2, 3};
  EXPECT_THROW(dot(a, b), InvalidArgument);
}

// ---------------------------------------------------------------- qr

class QrProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrProperty, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 131 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m), static_cast<std::size_t>(n), rng);
  const QrDecomposition qr(a);
  const Matrix q = qr.thin_q();
  const Matrix r = qr.r();
  // A = QR
  EXPECT_LT(max_abs_diff(q * r, a), 1e-10);
  // QᵀQ = I
  EXPECT_LT(max_abs_diff(q.gram(), Matrix::identity(static_cast<std::size_t>(n))), 1e-12);
  // R upper triangular
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      EXPECT_EQ(r(static_cast<std::size_t>(i), static_cast<std::size_t>(j)), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrProperty,
                         ::testing::Values(std::pair{3, 1}, std::pair{4, 2},
                                           std::pair{5, 5}, std::pair{10, 3},
                                           std::pair{40, 8}, std::pair{100, 12},
                                           std::pair{64, 20}));

TEST(Qr, SolveRecoversExactSolution) {
  Rng rng(10);
  const Matrix a = random_matrix(12, 5, rng);
  std::vector<double> x_true(5);
  for (auto& x : x_true) x = rng.normal();
  const auto b = a.multiply(x_true);
  const auto x = QrDecomposition(a).solve(b);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

TEST(Qr, LeastSquaresResidualOrthogonalToColumnSpace) {
  Rng rng(11);
  const Matrix a = random_matrix(20, 4, rng);
  std::vector<double> b(20);
  for (auto& v : b) v = rng.normal();
  const auto x = QrDecomposition(a).solve(b);
  const auto fitted = a.multiply(x);
  std::vector<double> resid(20);
  for (std::size_t i = 0; i < 20; ++i) {
    resid[i] = b[i] - fitted[i];
  }
  const auto at_r = a.multiply_transposed(resid);
  for (double v : at_r) {
    EXPECT_NEAR(v, 0.0, 1e-10);
  }
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a(6, 3);
  Rng rng(12);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = 2.0 * a(i, 0);  // exactly collinear
    a(i, 2) = rng.normal();
  }
  const QrDecomposition qr(a);
  EXPECT_FALSE(qr.full_rank());
  const std::vector<double> b(6, 1.0);
  EXPECT_THROW(qr.solve(b), NumericalError);
  EXPECT_THROW(qr.r_inverse(), NumericalError);
}

TEST(Qr, RInverseTimesRIsIdentity) {
  Rng rng(13);
  const Matrix a = random_matrix(9, 4, rng);
  const QrDecomposition qr(a);
  EXPECT_LT(max_abs_diff(qr.r_inverse() * qr.r(), Matrix::identity(4)), 1e-10);
}

TEST(Qr, UnderdeterminedRejected) {
  const Matrix a(2, 3);
  EXPECT_THROW(QrDecomposition{a}, InvalidArgument);
}

TEST(Qr, DiagonalConditionOrderOfMagnitude) {
  Matrix a{{1, 0}, {0, 1e-6}, {0, 0}};
  const QrDecomposition qr(a);
  EXPECT_NEAR(qr.diagonal_condition(), 1e6, 1e1);
}

// ---------------------------------------------------------------- cholesky

TEST(Cholesky, FactorizesAndSolvesSpd) {
  Rng rng(14);
  const Matrix g = random_matrix(10, 4, rng).gram() + Matrix::identity(4);
  const CholeskyDecomposition chol(g);
  EXPECT_LT(max_abs_diff(chol.l() * chol.l().transposed(), g), 1e-10);
  std::vector<double> x_true{1, -2, 3, 0.5};
  const auto b = g.multiply(x_true);
  const auto x = chol.solve(b);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Cholesky, InverseIsTwoSided) {
  Rng rng(15);
  const Matrix g = random_matrix(8, 3, rng).gram() + Matrix::identity(3);
  const Matrix inv = CholeskyDecomposition(g).inverse();
  EXPECT_LT(max_abs_diff(g * inv, Matrix::identity(3)), 1e-9);
  EXPECT_LT(max_abs_diff(inv * g, Matrix::identity(3)), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix bad{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyDecomposition{bad}, NumericalError);
}

TEST(Cholesky, LogDeterminantMatchesKnown) {
  const Matrix d{{4, 0}, {0, 9}};
  EXPECT_NEAR(CholeskyDecomposition(d).log_determinant(), std::log(36.0), 1e-12);
}

// ---------------------------------------------------------------- svd

class SvdProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdProperty, ReconstructionOrthogonalityOrdering) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m), static_cast<std::size_t>(n), rng);
  const Svd f = svd(a);
  // Reconstruction U S Vᵀ = A.
  Matrix us = f.u;
  for (std::size_t j = 0; j < f.sigma.size(); ++j) {
    for (std::size_t i = 0; i < us.rows(); ++i) {
      us(i, j) *= f.sigma[j];
    }
  }
  EXPECT_LT(max_abs_diff(us * f.v.transposed(), a), 1e-9);
  // Orthonormal factors.
  EXPECT_LT(max_abs_diff(f.u.gram(), Matrix::identity(static_cast<std::size_t>(n))), 1e-10);
  EXPECT_LT(max_abs_diff(f.v.gram(), Matrix::identity(static_cast<std::size_t>(n))), 1e-10);
  // Descending singular values, all non-negative.
  for (std::size_t j = 1; j < f.sigma.size(); ++j) {
    EXPECT_GE(f.sigma[j - 1], f.sigma[j]);
  }
  EXPECT_GE(f.sigma.back(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdProperty,
                         ::testing::Values(std::pair{2, 2}, std::pair{5, 3},
                                           std::pair{8, 8}, std::pair{20, 6},
                                           std::pair{50, 10}));

TEST(Svd, KnownDiagonalCase) {
  const Matrix a{{3, 0}, {0, 4}, {0, 0}};
  const Svd f = svd(a);
  EXPECT_NEAR(f.sigma[0], 4.0, 1e-12);
  EXPECT_NEAR(f.sigma[1], 3.0, 1e-12);
}

TEST(Svd, PinvSatisfiesMoorePenrose) {
  Rng rng(16);
  const Matrix a = random_matrix(8, 4, rng);
  const Matrix p = pinv(a);
  EXPECT_LT(max_abs_diff(a * p * a, a), 1e-9);
  EXPECT_LT(max_abs_diff(p * a * p, p), 1e-9);
  // (AP)ᵀ = AP and (PA)ᵀ = PA.
  const Matrix ap = a * p;
  const Matrix pa = p * a;
  EXPECT_LT(max_abs_diff(ap.transposed(), ap), 1e-9);
  EXPECT_LT(max_abs_diff(pa.transposed(), pa), 1e-9);
}

TEST(Svd, PinvHandlesWideMatrices) {
  Rng rng(17);
  const Matrix a = random_matrix(3, 6, rng);
  const Matrix p = pinv(a);
  EXPECT_EQ(p.rows(), 6u);
  EXPECT_EQ(p.cols(), 3u);
  EXPECT_LT(max_abs_diff(a * p * a, a), 1e-9);
}

TEST(Svd, PinvOfRankDeficientIgnoresNullDirections) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * a(i, 0);
  }
  const Matrix p = pinv(a);
  EXPECT_LT(max_abs_diff(a * p * a, a), 1e-9);
}

TEST(Svd, ConditionNumberOfIdentityIsOne) {
  EXPECT_NEAR(condition_number(Matrix::identity(5)), 1.0, 1e-12);
}

TEST(Svd, ConditionNumberOfSingularIsInf) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(1, 1) = 0;  // second column zero
  EXPECT_TRUE(std::isinf(condition_number(a)));
}

// ---------------------------------------------------------------- lstsq

TEST(Lstsq, FullRankUsesQrAndReportsResidual) {
  Rng rng(18);
  const Matrix a = random_matrix(15, 4, rng);
  std::vector<double> b(15);
  for (auto& v : b) v = rng.normal();
  const LstsqResult res = lstsq(a, b);
  EXPECT_TRUE(res.full_rank);
  EXPECT_EQ(res.x.size(), 4u);
  EXPECT_NEAR(res.residual_norm, norm2(res.residual), 1e-12);
}

TEST(Lstsq, RankDeficientFallsBackToPinv) {
  Matrix a(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 3.0 * a(i, 0);
  }
  std::vector<double> b(6, 1.0);
  const LstsqResult res = lstsq(a, b);
  EXPECT_FALSE(res.full_rank);
  // Minimum-norm solution still minimizes the residual.
  EXPECT_EQ(res.x.size(), 2u);
}

TEST(Lstsq, SizeMismatchThrows) {
  const Matrix a(4, 2);
  const std::vector<double> b(5, 0.0);
  EXPECT_THROW(lstsq(a, b), InvalidArgument);
}

// ------------------------------------------------- qr column append

namespace {

std::vector<double> column_of(const Matrix& a, std::size_t j) {
  std::vector<double> c(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    c[i] = a(i, j);
  }
  return c;
}

/// Grow a factor column by column and compare against the from-scratch
/// factorization of the same prefix at every width.
void expect_append_matches_scratch(const Matrix& a, double tol) {
  const std::vector<std::size_t> first{0};
  QrDecomposition grown(a.select_columns(first));
  for (std::size_t n = 2; n <= a.cols(); ++n) {
    grown.append_column(column_of(a, n - 1));
    std::vector<std::size_t> prefix(n);
    for (std::size_t j = 0; j < n; ++j) {
      prefix[j] = j;
    }
    const QrDecomposition scratch(a.select_columns(prefix));
    ASSERT_EQ(grown.cols(), scratch.cols());
    EXPECT_EQ(grown.full_rank(), scratch.full_rank());
    const Matrix rg = grown.r();
    const Matrix rs = scratch.r();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        EXPECT_NEAR(rg(i, j), rs(i, j), tol) << "r(" << i << "," << j << ") at width " << n;
      }
    }
  }
}

}  // namespace

TEST(QrAppend, MatchesFromScratchOnRandomMatrix) {
  Rng rng(77);
  const Matrix a = random_matrix(30, 7, rng);
  expect_append_matches_scratch(a, 1e-12);
}

TEST(QrAppend, MatchesFromScratchOnNearCollinearMatrix) {
  Rng rng(78);
  Matrix a = random_matrix(25, 5, rng);
  // Column 3 = column 0 + tiny noise, column 4 = 2*column 1 - column 2.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    a(i, 3) = a(i, 0) + 1e-9 * rng.normal();
    a(i, 4) = 2.0 * a(i, 1) - a(i, 2) + 1e-10 * rng.normal();
  }
  expect_append_matches_scratch(a, 1e-12);
}

TEST(QrAppend, SolveAfterAppendMatchesFromScratchSolve) {
  Rng rng(79);
  const Matrix a = random_matrix(20, 6, rng);
  std::vector<double> b(20);
  for (auto& v : b) v = rng.normal();

  const std::vector<std::size_t> first3{0, 1, 2};
  QrDecomposition grown(a.select_columns(first3));
  grown.append_column(column_of(a, 3));
  grown.append_column(column_of(a, 4));
  grown.append_column(column_of(a, 5));
  const QrDecomposition scratch(a);
  const auto xg = grown.solve(b);
  const auto xs = scratch.solve(b);
  ASSERT_EQ(xg.size(), xs.size());
  for (std::size_t j = 0; j < xg.size(); ++j) {
    // append_column replicates the constructor's arithmetic exactly.
    EXPECT_EQ(xg[j], xs[j]) << "beta[" << j << "]";
  }
}

TEST(QrAppend, RejectsWhenFactorIsSquare) {
  Rng rng(80);
  const Matrix a = random_matrix(3, 3, rng);
  QrDecomposition qr(a);
  EXPECT_THROW(qr.append_column(std::vector<double>(3, 1.0)), InvalidArgument);
}

TEST(QrAppend, DetectsCollinearAppendedColumn) {
  Rng rng(81);
  const Matrix a = random_matrix(12, 3, rng);
  QrDecomposition qr(a);
  EXPECT_TRUE(qr.full_rank());
  std::vector<double> dup = column_of(a, 1);
  qr.append_column(dup);
  EXPECT_FALSE(qr.full_rank());
}

// ------------------------------------------------- qr extension

TEST(QrExtension, SolveMatchesFromScratchOnAssembledDesign) {
  Rng rng(90);
  const Matrix a = random_matrix(24, 6, rng);
  std::vector<double> b(24);
  for (auto& v : b) v = rng.normal();

  const std::vector<std::size_t> first3{0, 1, 2};
  const QrDecomposition base(a.select_columns(first3));
  QrExtension ext(base);
  ext.append(column_of(a, 3));
  ext.append(column_of(a, 4));
  ext.append(column_of(a, 5));
  ASSERT_TRUE(ext.full_rank());
  std::vector<double> qty = base.apply_qt(b);
  ext.apply_qt_ext(qty);
  const auto xe = ext.solve_from_qty(qty);

  const QrDecomposition scratch(a);
  const auto xs = scratch.solve(b);
  ASSERT_EQ(xe.size(), xs.size());
  for (std::size_t j = 0; j < xe.size(); ++j) {
    // The extension reproduces append_column's (and hence the constructor's)
    // arithmetic, so the combined solve is the from-scratch solve.
    EXPECT_EQ(xe[j], xs[j]) << "beta[" << j << "]";
  }
}

TEST(QrExtension, AppendTransformedSkipsBaseReflectors) {
  Rng rng(91);
  const Matrix a = random_matrix(18, 5, rng);
  const std::vector<std::size_t> first3{0, 1, 2};
  const QrDecomposition base(a.select_columns(first3));

  QrExtension plain(base);
  plain.append(column_of(a, 3));
  QrExtension pre(base);
  std::vector<double> transformed = column_of(a, 3);
  base.transform_column(transformed);
  pre.append_transformed(transformed);

  std::vector<double> b(18);
  for (auto& v : b) v = rng.normal();
  std::vector<double> qty1 = base.apply_qt(b);
  std::vector<double> qty2 = qty1;
  plain.apply_qt_ext(qty1);
  pre.apply_qt_ext(qty2);
  const auto x1 = plain.solve_from_qty(qty1);
  const auto x2 = pre.solve_from_qty(qty2);
  ASSERT_EQ(x1.size(), x2.size());
  for (std::size_t j = 0; j < x1.size(); ++j) {
    EXPECT_EQ(x1[j], x2[j]);
  }
}

TEST(QrExtension, RebindReusesBuffersAcrossTrials) {
  Rng rng(92);
  const Matrix a = random_matrix(16, 4, rng);
  const std::vector<std::size_t> first2{0, 1};
  const QrDecomposition base(a.select_columns(first2));
  QrExtension ext;
  for (int trial = 0; trial < 3; ++trial) {
    ext.rebind(base);
    EXPECT_EQ(ext.cols(), base.cols());
    ext.append(column_of(a, 2));
    ext.append(column_of(a, 3));
    EXPECT_EQ(ext.cols(), base.cols() + 2);
    EXPECT_TRUE(ext.full_rank());
  }
}

TEST(QrExtension, FlagsCollinearTrialWithoutMutatingBase) {
  Rng rng(93);
  const Matrix a = random_matrix(14, 3, rng);
  const QrDecomposition base(a);
  ASSERT_TRUE(base.full_rank());
  QrExtension ext(base);
  ext.append(column_of(a, 0));  // duplicate of a base column
  EXPECT_FALSE(ext.full_rank());
  EXPECT_TRUE(base.full_rank());  // the base factor is read-only
}

}  // namespace
}  // namespace pwx::la
