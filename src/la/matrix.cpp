#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pwx::la {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    PWX_REQUIRE(row.size() == cols_, "ragged initializer: row has ", row.size(),
                " entries, expected ", cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::column(std::span<const double> values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

std::vector<double> Matrix::col(std::size_t c) const {
  PWX_REQUIRE(c < cols_, "column ", c, " out of range (cols=", cols_, ")");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    out[r] = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  PWX_REQUIRE(cols_ == rhs.rows_, "matmul dimension mismatch: ", rows_, "x", cols_,
              " * ", rhs.rows_, "x", rhs.cols_);
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps both rhs and out accesses row-contiguous.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) {
        continue;
      }
      const double* rhs_row = rhs.data_.data() + k * rhs.cols_;
      double* out_row = out.data_.data() + i * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out_row[j] += aik * rhs_row[j];
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  PWX_REQUIRE(v.size() == cols_, "matvec dimension mismatch: cols=", cols_,
              " v=", v.size());
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    out[r] = dot(row(r), v);
  }
  return out;
}

std::vector<double> Matrix::multiply_transposed(std::span<const double> v) const {
  PWX_REQUIRE(v.size() == rows_, "matvecT dimension mismatch: rows=", rows_,
              " v=", v.size());
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      out[c] += vr * row_ptr[c];
    }
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ri = row_ptr[i];
      if (ri == 0.0) {
        continue;
      }
      double* g_row = g.data_.data() + i * cols_;
      for (std::size_t j = i; j < cols_; ++j) {
        g_row[j] += ri * row_ptr[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      g(i, j) = g(j, i);
    }
  }
  return g;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  PWX_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch in +");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += rhs.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  PWX_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch in -");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= rhs.data_[i];
  }
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) {
    x *= s;
  }
  return *this;
}

Matrix Matrix::select_columns(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < indices.size(); ++j) {
      PWX_REQUIRE(indices[j] < cols_, "column index ", indices[j], " out of range");
      out(r, j) = (*this)(r, indices[j]);
    }
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    PWX_REQUIRE(indices[i] < rows_, "row index ", indices[i], " out of range");
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

void Matrix::append_column(std::span<const double> values) {
  if (empty()) {
    *this = column(values);
    return;
  }
  PWX_REQUIRE(values.size() == rows_, "append_column size mismatch: rows=", rows_,
              " values=", values.size());
  std::vector<double> next(rows_ * (cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data_.data() + r * cols_, cols_, next.data() + r * (cols_ + 1));
    next[r * (cols_ + 1) + cols_] = values[r];
  }
  data_ = std::move(next);
  ++cols_;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) {
    m = std::max(m, std::fabs(x));
  }
  return m;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double x : data_) {
    sum += x * x;
  }
  return std::sqrt(sum);
}

double norm2(std::span<const double> v) {
  // Scaled accumulation to avoid overflow/underflow on extreme inputs.
  double scale = 0.0;
  double ssq = 1.0;
  for (double x : v) {
    if (x == 0.0) {
      continue;
    }
    const double ax = std::fabs(x);
    if (scale < ax) {
      ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
      scale = ax;
    } else {
      ssq += (ax / scale) * (ax / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double dot(std::span<const double> a, std::span<const double> b) {
  PWX_REQUIRE(a.size() == b.size(), "dot size mismatch: ", a.size(), " vs ", b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

}  // namespace pwx::la
