// Column standardization (z-scoring) for design matrices.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::stats {

/// Per-column affine transform parameters.
struct ColumnScaler {
  std::vector<double> mean;
  std::vector<double> scale;  ///< standard deviation, 1.0 for constant columns

  /// Fit means and scales from the columns of x.
  static ColumnScaler fit(const la::Matrix& x);

  /// Apply (x - mean) / scale column-wise.
  la::Matrix transform(const la::Matrix& x) const;

  /// Undo the transform on a coefficient vector fitted in scaled space,
  /// returning coefficients for the original space plus the intercept shift.
  /// beta_orig[j] = beta_scaled[j] / scale[j];
  /// intercept_shift = -Σ beta_scaled[j] * mean[j] / scale[j].
  std::pair<std::vector<double>, double> unscale_coefficients(
      std::span<const double> beta_scaled) const;
};

}  // namespace pwx::stats
