file(REMOVE_RECURSE
  "CMakeFiles/repro_fig3.dir/repro_fig3.cpp.o"
  "CMakeFiles/repro_fig3.dir/repro_fig3.cpp.o.d"
  "repro_fig3"
  "repro_fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
