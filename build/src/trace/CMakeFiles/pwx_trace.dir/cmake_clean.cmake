file(REMOVE_RECURSE
  "CMakeFiles/pwx_trace.dir/phase_profile.cpp.o"
  "CMakeFiles/pwx_trace.dir/phase_profile.cpp.o.d"
  "CMakeFiles/pwx_trace.dir/plugins.cpp.o"
  "CMakeFiles/pwx_trace.dir/plugins.cpp.o.d"
  "CMakeFiles/pwx_trace.dir/serialize.cpp.o"
  "CMakeFiles/pwx_trace.dir/serialize.cpp.o.d"
  "CMakeFiles/pwx_trace.dir/trace.cpp.o"
  "CMakeFiles/pwx_trace.dir/trace.cpp.o.d"
  "libpwx_trace.a"
  "libpwx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
