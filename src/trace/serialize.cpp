#include "trace/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "trace/format.hpp"
#include "trace/view.hpp"

namespace pwx::trace {

namespace {

using format::fnv1a_lanes;
using format::fnv1a_update;
using format::kEventBytes;
using format::kFnvOffset;
using format::kHeaderBytesV3;
using format::kHeaderBytesV4;
using format::kMagicBytes;
using format::kMagicV2;
using format::kMagicV3;
using format::kMagicV4;
using format::kSectionAttributes;
using format::kSectionCount;
using format::kSectionEvents;
using format::kSectionMetrics;
using format::kSectionRegions;
using format::pad8;

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void put_f64(std::ostream& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Attribute pairs sorted by key: the attribute map itself is unordered,
/// but all formats serialize attributes in sorted order so identical
/// traces always produce identical bytes.
std::vector<std::pair<const std::string*, const std::string*>> sorted_attributes(
    const Trace& trace) {
  std::vector<std::pair<const std::string*, const std::string*>> attrs;
  attrs.reserve(trace.attributes().size());
  for (const auto& [key, value] : trace.attributes()) {
    attrs.emplace_back(&key, &value);
  }
  std::sort(attrs.begin(), attrs.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  return attrs;
}

enum : std::uint8_t { kRegionEnter = 1, kRegionExit = 2, kMetric = 3 };

/// Checksumming, position-tracking wrapper over the input stream (v2 path).
/// Every failure it throws is an IoError carrying the byte offset where
/// parsing stopped and the index of the event record being decoded (-1
/// while still in the header), so a corrupt file is diagnosable down to
/// the byte.
class Reader {
public:
  explicit Reader(std::istream& in) : in_(in) {}

  void begin_record(std::uint64_t index) { record_ = static_cast<std::int64_t>(index); }
  std::uint64_t checksum() const { return checksum_; }
  std::int64_t offset() const { return static_cast<std::int64_t>(offset_); }

  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("trace: " + what + " (byte " + std::to_string(offset_) +
                      ", record " + std::to_string(record_) + ")",
                  static_cast<std::int64_t>(offset_), record_);
  }

  std::uint8_t u8() {
    char buf[1];
    raw(buf, 1);
    return static_cast<std::uint8_t>(buf[0]);
  }

  std::uint32_t u32() {
    char buf[4];
    raw(buf, 4);
    std::uint32_t v = 0;
    std::memcpy(&v, buf, 4);
    return v;
  }

  std::uint64_t u64() {
    char buf[8];
    raw(buf, 8);
    std::uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    return v;
  }

  double f64() {
    char buf[8];
    raw(buf, 8);
    double v = 0;
    std::memcpy(&v, buf, 8);
    return v;
  }

  std::string string() {
    const std::uint32_t len = u32();
    if (len > (1u << 24)) {
      fail("implausible string length " + std::to_string(len));
    }
    std::string s(len, '\0');
    if (len > 0) {
      raw(s.data(), len);
    }
    return s;
  }

  /// The footer is read outside the checksummed body.
  std::uint64_t footer_u64() {
    char buf[8];
    if (!in_.read(buf, 8)) {
      fail("truncated before checksum footer");
    }
    offset_ += 8;
    std::uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    return v;
  }

private:
  void raw(char* buf, std::size_t size) {
    if (!in_.read(buf, static_cast<std::streamsize>(size))) {
      fail("unexpected end of stream");
    }
    fnv1a_update(checksum_, buf, size);
    offset_ += size;
  }

  std::istream& in_;
  std::uint64_t offset_ = kMagicBytes;   ///< bytes consumed, incl. magic
  std::int64_t record_ = -1;             ///< current event record (-1: header)
  std::uint64_t checksum_ = kFnvOffset;  ///< running FNV-1a over body bytes
};

}  // namespace

// ------------------------------------------------------------------ writers

void write_trace_v2(const Trace& trace, std::ostream& out) {
  // Serialize the body to memory first so the checksum can be computed over
  // exactly the bytes written.
  std::ostringstream body;

  const auto attrs = sorted_attributes(trace);
  put_u32(body, static_cast<std::uint32_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    put_string(body, *key);
    put_string(body, *value);
  }

  put_u32(body, static_cast<std::uint32_t>(trace.metrics().size()));
  for (const MetricDefinition& metric : trace.metrics()) {
    put_string(body, metric.name);
    put_string(body, metric.unit);
    put_u8(body, static_cast<std::uint8_t>(metric.mode));
  }

  const EventColumns& columns = trace.columns();
  put_u64(body, columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    put_u8(body, columns.kinds[i]);
    put_u64(body, columns.times[i]);
    if (static_cast<EventKind>(columns.kinds[i]) == EventKind::Metric) {
      put_u32(body, columns.ids[i]);
      put_f64(body, columns.values[i]);
    } else {
      put_string(body, columns.regions.at(columns.ids[i]));
    }
  }

  const std::string bytes = body.str();
  std::uint64_t checksum = kFnvOffset;
  fnv1a_update(checksum, bytes.data(), bytes.size());

  out.write(kMagicV2, sizeof kMagicV2);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  put_u64(out, checksum);
  if (!out) {
    throw IoError("trace: write failed");
  }
}

namespace {

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void append_string(std::string& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

template <typename T>
void append_array(std::string& out, const std::vector<T>& values) {
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(T));
}

/// Zero-pad `out` so the current section ends on an 8-byte boundary.
void append_padding(std::string& out, std::size_t content_bytes) {
  out.append(pad8(content_bytes) - content_bytes, '\0');
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  const EventColumns& columns = trace.columns();
  const auto attrs = sorted_attributes(trace);

  // Exact content sizes up front; each section is recorded and written at
  // its zero-padded size so every section — and every event column inside
  // the widest-first event section — starts on an 8-byte boundary.
  std::size_t attr_bytes = 4;
  for (const auto& [key, value] : attrs) {
    attr_bytes += 8 + key->size() + value->size();
  }
  std::size_t metric_bytes = 4;
  for (const MetricDefinition& metric : trace.metrics()) {
    metric_bytes += 9 + metric.name.size() + metric.unit.size();
  }
  std::size_t region_bytes = 4;
  for (const std::string& region : columns.regions.names()) {
    region_bytes += 4 + region.size();
  }
  const std::size_t event_bytes = 8 + columns.size() * kEventBytes;

  std::string body;
  body.reserve(kHeaderBytesV4 + pad8(attr_bytes) + pad8(metric_bytes) +
               pad8(region_bytes) + pad8(event_bytes));

  append_u32(body, kSectionCount);
  append_u32(body, 0);  // reserved
  const std::pair<std::uint32_t, std::size_t> table[kSectionCount] = {
      {kSectionAttributes, attr_bytes},
      {kSectionMetrics, metric_bytes},
      {kSectionRegions, region_bytes},
      {kSectionEvents, event_bytes},
  };
  for (const auto& [id, size] : table) {
    append_u32(body, id);
    append_u32(body, 0);  // reserved
    append_u64(body, pad8(size));
  }

  append_u32(body, static_cast<std::uint32_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    append_string(body, *key);
    append_string(body, *value);
  }
  append_padding(body, attr_bytes);

  append_u32(body, static_cast<std::uint32_t>(trace.metrics().size()));
  for (const MetricDefinition& metric : trace.metrics()) {
    append_string(body, metric.name);
    append_string(body, metric.unit);
    append_u8(body, static_cast<std::uint8_t>(metric.mode));
  }
  append_padding(body, metric_bytes);

  append_u32(body, static_cast<std::uint32_t>(columns.regions.size()));
  for (const std::string& region : columns.regions.names()) {
    append_string(body, region);
  }
  append_padding(body, region_bytes);

  // Columns widest-first (times, values, ids, kinds) so each starts on an
  // 8-byte boundary — the property the zero-copy reader aliases through.
  append_u64(body, columns.size());
  append_array(body, columns.times);
  append_array(body, columns.values);
  append_array(body, columns.ids);
  append_array(body, columns.kinds);
  append_padding(body, event_bytes);

  out.write(kMagicV4, sizeof kMagicV4);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  put_u64(out, fnv1a_lanes(body.data(), body.size()));
  if (!out) {
    throw IoError("trace: write failed");
  }
}

void write_trace_v3(const Trace& trace, std::ostream& out) {
  const EventColumns& columns = trace.columns();
  const auto attrs = sorted_attributes(trace);

  // Exact section sizes up front, so the body is one preallocated buffer
  // filled by bulk appends.
  std::size_t attr_bytes = 4;
  for (const auto& [key, value] : attrs) {
    attr_bytes += 8 + key->size() + value->size();
  }
  std::size_t metric_bytes = 4;
  for (const MetricDefinition& metric : trace.metrics()) {
    metric_bytes += 9 + metric.name.size() + metric.unit.size();
  }
  std::size_t region_bytes = 4;
  for (const std::string& region : columns.regions.names()) {
    region_bytes += 4 + region.size();
  }
  const std::size_t event_bytes = 8 + columns.size() * kEventBytes;

  std::string body;
  body.reserve(kHeaderBytesV3 + attr_bytes + metric_bytes + region_bytes +
               event_bytes);

  append_u32(body, kSectionCount);
  const std::pair<std::uint32_t, std::size_t> table[kSectionCount] = {
      {kSectionAttributes, attr_bytes},
      {kSectionMetrics, metric_bytes},
      {kSectionRegions, region_bytes},
      {kSectionEvents, event_bytes},
  };
  for (const auto& [id, size] : table) {
    append_u32(body, id);
    append_u64(body, size);
  }

  append_u32(body, static_cast<std::uint32_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    append_string(body, *key);
    append_string(body, *value);
  }

  append_u32(body, static_cast<std::uint32_t>(trace.metrics().size()));
  for (const MetricDefinition& metric : trace.metrics()) {
    append_string(body, metric.name);
    append_string(body, metric.unit);
    append_u8(body, static_cast<std::uint8_t>(metric.mode));
  }

  append_u32(body, static_cast<std::uint32_t>(columns.regions.size()));
  for (const std::string& region : columns.regions.names()) {
    append_string(body, region);
  }

  append_u64(body, columns.size());
  append_array(body, columns.times);
  append_array(body, columns.kinds);
  append_array(body, columns.ids);
  append_array(body, columns.values);

  out.write(kMagicV3, sizeof kMagicV3);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  put_u64(out, fnv1a_lanes(body.data(), body.size()));
  if (!out) {
    throw IoError("trace: write failed");
  }
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("trace: cannot open '" + path + "' for writing");
  }
  write_trace(trace, out);
}

// ------------------------------------------------------------------ readers

namespace {

Trace read_body_v2(Reader& reader) {
  Trace trace;
  const std::uint32_t attr_count = reader.u32();
  if (attr_count > (1u << 20)) {
    reader.fail("implausible attribute count " + std::to_string(attr_count));
  }
  for (std::uint32_t i = 0; i < attr_count; ++i) {
    std::string key = reader.string();
    std::string value = reader.string();
    trace.set_attribute(key, value);
  }

  const std::uint32_t metric_count = reader.u32();
  if (metric_count > (1u << 20)) {
    reader.fail("implausible metric count " + std::to_string(metric_count));
  }
  for (std::uint32_t i = 0; i < metric_count; ++i) {
    MetricDefinition metric;
    metric.name = reader.string();
    metric.unit = reader.string();
    const std::uint8_t mode = reader.u8();
    if (mode > static_cast<std::uint8_t>(MetricMode::CounterIncrement)) {
      reader.fail("invalid metric mode " + std::to_string(mode));
    }
    metric.mode = static_cast<MetricMode>(mode);
    trace.define_metric(std::move(metric));
  }

  const std::uint64_t event_count = reader.u64();
  if (event_count > (1ull << 32)) {
    reader.fail("implausible event count " + std::to_string(event_count));
  }
  for (std::uint64_t i = 0; i < event_count; ++i) {
    reader.begin_record(i);
    const std::uint8_t kind = reader.u8();
    switch (kind) {
      case kRegionEnter: {
        RegionEnter e;
        e.time_ns = reader.u64();
        e.region = reader.string();
        trace.append(std::move(e));
        break;
      }
      case kRegionExit: {
        RegionExit e;
        e.time_ns = reader.u64();
        e.region = reader.string();
        trace.append(std::move(e));
        break;
      }
      case kMetric: {
        MetricEvent e;
        e.time_ns = reader.u64();
        e.metric = reader.u32();
        if (e.metric >= trace.metrics().size()) {
          reader.fail("metric id " + std::to_string(e.metric) +
                      " out of range (have " +
                      std::to_string(trace.metrics().size()) + ")");
        }
        e.value = reader.f64();
        trace.append(e);
        break;
      }
      default:
        reader.fail("unknown event kind " + std::to_string(kind));
    }
  }

  const std::uint64_t expected = reader.checksum();
  const std::uint64_t stored = reader.footer_u64();
  if (stored != expected) {
    reader.fail("checksum mismatch (file corrupt)");
  }
  return trace;
}

/// Bounds-checked cursor over the in-memory v3 body. Offsets in errors are
/// absolute file offsets (the 8-byte magic precedes the body).
class BufReader {
public:
  BufReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  [[noreturn]] void fail(const std::string& what, std::int64_t record = -1,
                         std::size_t at_pos = static_cast<std::size_t>(-1)) const {
    const std::size_t pos = at_pos == static_cast<std::size_t>(-1) ? pos_ : at_pos;
    const std::size_t offset = pos + kMagicBytes;
    throw IoError("trace: " + what + " (byte " + std::to_string(offset) +
                      ", record " + std::to_string(record) + ")",
                  static_cast<std::int64_t>(offset), record);
  }

  const char* raw(std::size_t size, std::int64_t record = -1) {
    if (size > remaining()) {
      fail("unexpected end of stream", record, size_);
    }
    const char* ptr = data_ + pos_;
    pos_ += size;
    return ptr;
  }

  std::uint8_t u8(std::int64_t record = -1) {
    std::uint8_t v = 0;
    std::memcpy(&v, raw(1, record), 1);
    return v;
  }

  std::uint32_t u32(std::int64_t record = -1) {
    std::uint32_t v = 0;
    std::memcpy(&v, raw(4, record), 4);
    return v;
  }

  std::uint64_t u64(std::int64_t record = -1) {
    std::uint64_t v = 0;
    std::memcpy(&v, raw(8, record), 8);
    return v;
  }

  std::string string() {
    const std::uint32_t len = u32();
    if (len > (1u << 24)) {
      fail("implausible string length " + std::to_string(len));
    }
    return std::string(raw(len), len);
  }

private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Drain the rest of `in` into one contiguous buffer (single-pass bulk read).
std::string read_remaining(std::istream& in) {
  std::string data;
  char chunk[1 << 16];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
    data.append(chunk, static_cast<std::size_t>(in.gcount()));
    if (!in) {
      break;
    }
  }
  return data;
}

template <typename T>
std::vector<T> read_column(BufReader& reader, std::size_t count) {
  std::vector<T> out(count);
  const char* src = reader.raw(count * sizeof(T),
                               static_cast<std::int64_t>(reader.remaining() / sizeof(T)));
  if (count > 0) {
    std::memcpy(out.data(), src, count * sizeof(T));
  }
  return out;
}

Trace read_body_v3(const std::string& buffer) {
  if (buffer.size() < 8) {
    throw IoError("trace: truncated before checksum footer (byte " +
                      std::to_string(buffer.size() + kMagicBytes) + ", record -1)",
                  static_cast<std::int64_t>(buffer.size() + kMagicBytes), -1);
  }
  const std::size_t body_size = buffer.size() - 8;
  BufReader reader(buffer.data(), body_size);

  // Section table.
  const std::uint32_t section_count = reader.u32();
  if (section_count != kSectionCount) {
    reader.fail("unexpected section count " + std::to_string(section_count));
  }
  std::size_t section_sizes[kSectionCount] = {};
  std::size_t total = kHeaderBytesV3;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const std::uint32_t id = reader.u32();
    if (id != s + 1) {
      reader.fail("unexpected section id " + std::to_string(id));
    }
    const std::uint64_t size = reader.u64();
    if (size > body_size) {
      reader.fail("implausible section size " + std::to_string(size));
    }
    section_sizes[s] = static_cast<std::size_t>(size);
    total += section_sizes[s];
  }
  // Trailing bytes beyond the declared sections are a structural error. A
  // *shorter* body (truncated file) is not failed here: parsing continues so
  // the eventual end-of-stream error points at the exact byte and — when the
  // cut lands inside the event arrays — the exact record.
  if (total < body_size) {
    reader.fail("section sizes do not cover the body (" + std::to_string(total) +
                " vs " + std::to_string(body_size) + ")");
  }

  Trace trace;

  // Attributes.
  std::size_t section_end = reader.pos() + section_sizes[0];
  const std::uint32_t attr_count = reader.u32();
  if (attr_count > (1u << 20)) {
    reader.fail("implausible attribute count " + std::to_string(attr_count));
  }
  for (std::uint32_t i = 0; i < attr_count; ++i) {
    std::string key = reader.string();
    std::string value = reader.string();
    trace.set_attribute(key, value);
  }
  if (reader.pos() != section_end) {
    reader.fail("attribute section size mismatch");
  }

  // Metric definitions.
  section_end = reader.pos() + section_sizes[1];
  const std::uint32_t metric_count = reader.u32();
  if (metric_count > (1u << 20)) {
    reader.fail("implausible metric count " + std::to_string(metric_count));
  }
  for (std::uint32_t i = 0; i < metric_count; ++i) {
    MetricDefinition metric;
    metric.name = reader.string();
    metric.unit = reader.string();
    const std::uint8_t mode = reader.u8();
    if (mode > static_cast<std::uint8_t>(MetricMode::CounterIncrement)) {
      reader.fail("invalid metric mode " + std::to_string(mode));
    }
    metric.mode = static_cast<MetricMode>(mode);
    trace.define_metric(std::move(metric));
  }
  if (reader.pos() != section_end) {
    reader.fail("metric section size mismatch");
  }

  // Region string table.
  section_end = reader.pos() + section_sizes[2];
  const std::uint32_t region_count = reader.u32();
  if (region_count > (1u << 20)) {
    reader.fail("implausible region count " + std::to_string(region_count));
  }
  EventColumns columns;
  for (std::uint32_t i = 0; i < region_count; ++i) {
    const std::string region = reader.string();
    if (columns.regions.intern(region) != i) {
      reader.fail("duplicate region name '" + region + "'");
    }
  }
  if (reader.pos() != section_end) {
    reader.fail("region section size mismatch");
  }

  // Event columns: four bulk array copies.
  const std::uint64_t event_count = reader.u64();
  if (event_count > (1ull << 32)) {
    reader.fail("implausible event count " + std::to_string(event_count));
  }
  const auto n = static_cast<std::size_t>(event_count);
  if (section_sizes[3] != 8 + n * kEventBytes) {
    reader.fail("event section size mismatch");
  }
  const std::size_t times_pos = reader.pos();
  columns.times = read_column<std::uint64_t>(reader, n);
  const std::size_t kinds_pos = reader.pos();
  columns.kinds = read_column<std::uint8_t>(reader, n);
  const std::size_t ids_pos = reader.pos();
  columns.ids = read_column<std::uint32_t>(reader, n);
  columns.values = read_column<double>(reader, n);

  // Per-record validation: chronology, known kinds, ids in range. Errors
  // point at the offending element inside its column.
  std::uint64_t last_time = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (columns.times[i] < last_time) {
      reader.fail("events must be chronological", static_cast<std::int64_t>(i),
                  times_pos + i * 8);
    }
    last_time = columns.times[i];
    switch (columns.kinds[i]) {
      case kRegionEnter:
      case kRegionExit:
        if (columns.ids[i] >= region_count) {
          reader.fail("region id " + std::to_string(columns.ids[i]) +
                          " out of range (have " + std::to_string(region_count) + ")",
                      static_cast<std::int64_t>(i), ids_pos + i * 4);
        }
        break;
      case kMetric:
        if (columns.ids[i] >= metric_count) {
          reader.fail("metric id " + std::to_string(columns.ids[i]) +
                          " out of range (have " + std::to_string(metric_count) + ")",
                      static_cast<std::int64_t>(i), ids_pos + i * 4);
        }
        break;
      default:
        reader.fail("unknown event kind " + std::to_string(columns.kinds[i]),
                    static_cast<std::int64_t>(i), kinds_pos + i);
    }
  }

  // Integrity last, mirroring the v2 reader: structural diagnostics keep
  // their precise positions, and any surviving bit flip is caught here.
  std::uint64_t stored = 0;
  std::memcpy(&stored, buffer.data() + body_size, 8);
  if (stored != fnv1a_lanes(buffer.data(), body_size)) {
    reader.fail("checksum mismatch (file corrupt)",
                n > 0 ? static_cast<std::int64_t>(n - 1) : -1, body_size);
  }

  trace.adopt_columns(std::move(columns));
  return trace;
}

Trace read_body_v4(const std::string& buffer) {
  if (buffer.size() < 8) {
    throw IoError("trace: truncated before checksum footer (byte " +
                      std::to_string(buffer.size() + kMagicBytes) + ", record -1)",
                  static_cast<std::int64_t>(buffer.size() + kMagicBytes), -1);
  }
  const std::size_t body_size = buffer.size() - 8;
  // Structure first (precise positions), integrity last — the same parser
  // and checksum pass the mapped reader uses, so both reject identically.
  const format::ParsedTraceV4 parsed = format::parse_trace_v4(buffer.data(), body_size);
  format::verify_checksum_v4(buffer.data(), body_size, parsed.event_count);
  return to_trace(parsed.view());
}

}  // namespace

Trace read_trace(std::istream& in) {
  char magic[8];
  if (!in.read(magic, sizeof magic)) {
    throw IoError("trace: bad magic (not an OTF2-lite file)", 0, -1);
  }
  if (std::memcmp(magic, kMagicV4, sizeof magic) == 0) {
    const std::string buffer = read_remaining(in);
    try {
      return read_body_v4(buffer);
    } catch (const IoError&) {
      throw;
    } catch (const Error& e) {
      throw IoError(std::string("trace: invalid record: ") + e.what(),
                    static_cast<std::int64_t>(sizeof magic), -1);
    }
  }
  if (std::memcmp(magic, kMagicV3, sizeof magic) == 0) {
    const std::string buffer = read_remaining(in);
    try {
      return read_body_v3(buffer);
    } catch (const IoError&) {
      throw;
    } catch (const Error& e) {
      throw IoError(std::string("trace: invalid record: ") + e.what(),
                    static_cast<std::int64_t>(sizeof magic), -1);
    }
  }
  if (std::memcmp(magic, kMagicV2, sizeof magic) == 0) {
    Reader reader(in);
    // Trace's own mutators (append, define_metric) validate invariants like
    // event chronology; a corrupt byte that violates one must still surface
    // as a position-carrying IoError, not as the mutator's InvalidArgument.
    try {
      return read_body_v2(reader);
    } catch (const IoError&) {
      throw;
    } catch (const Error& e) {
      reader.fail(std::string("invalid record: ") + e.what());
    }
  }
  throw IoError("trace: bad magic (not an OTF2-lite file)", 0, -1);
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("trace: cannot open '" + path + "' for reading");
  }
  return read_trace(in);
}

}  // namespace pwx::trace
