// Minimal JSON value model, writer, and parser.
//
// Used for model serialization (core/model_io) and experiment metadata. The
// subset implemented is complete JSON minus \uXXXX surrogate pairs (escapes
// are decoded to UTF-8 for the BMP). Numbers are stored as double, which is
// sufficient for model coefficients and counter rates.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pwx {

/// A JSON value: null, bool, number, string, array, or object.
class Json {
public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  // std::map keeps keys ordered, making serialized models diffable.
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double n) : type_(Type::Number), num_(n) {}
  Json(int n) : type_(Type::Number), num_(n) {}
  Json(std::int64_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
  Json(std::size_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  /// Typed accessors; throw pwx::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Mutable access, converting a Null value into the requested container.
  Array& make_array();
  Object& make_object();

  /// Object field lookup; throws if not an object or key missing.
  const Json& at(std::string_view key) const;
  /// Object field lookup returning nullptr when absent.
  const Json* find(std::string_view key) const;
  /// Insert or assign an object field.
  Json& operator[](std::string_view key);

  /// Serialize. `indent` < 0 means compact single-line output.
  std::string dump(int indent = 2) const;

  /// Parse a complete JSON document; throws pwx::IoError on syntax errors.
  static Json parse(std::string_view text);

private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace pwx
