// Tests for the regularized regression extensions: ridge and LASSO.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "regress/lasso.hpp"
#include "regress/ols.hpp"
#include "regress/ridge.hpp"

namespace pwx::regress {
namespace {

la::Matrix random_design(std::size_t n, std::size_t k, Rng& rng) {
  la::Matrix x(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      x(i, j) = rng.normal();
    }
  }
  return x;
}

// ---------------------------------------------------------------- ridge

TEST(Ridge, ZeroPenaltyMatchesOls) {
  Rng rng(1);
  const la::Matrix x = random_design(60, 3, rng);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    y[i] = 5.0 + 2.0 * x(i, 0) - x(i, 1) + rng.normal(0, 0.3);
  }
  const RidgeResult ridge = fit_ridge(x, y, 0.0);
  const OlsResult ols = fit_ols(x, y, {});
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(ridge.beta[j], ols.beta[j], 1e-6) << j;
  }
  EXPECT_NEAR(ridge.r_squared, ols.r_squared, 1e-9);
}

TEST(Ridge, PenaltyShrinksCoefficients) {
  Rng rng(2);
  const la::Matrix x = random_design(80, 4, rng);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    y[i] = 3.0 * x(i, 0) + 2.0 * x(i, 1) + rng.normal(0, 0.5);
  }
  const RidgeResult weak = fit_ridge(x, y, 0.01);
  const RidgeResult strong = fit_ridge(x, y, 10.0);
  double norm_weak = 0;
  double norm_strong = 0;
  for (std::size_t j = 1; j < 5; ++j) {
    norm_weak += weak.beta[j] * weak.beta[j];
    norm_strong += strong.beta[j] * strong.beta[j];
  }
  EXPECT_LT(norm_strong, norm_weak);
  // Effective dof shrinks with the penalty.
  EXPECT_LT(strong.effective_dof, weak.effective_dof);
  EXPECT_GE(strong.effective_dof, 1.0);  // intercept always counts
}

TEST(Ridge, StabilizesCollinearDesign) {
  // Two nearly identical columns: OLS coefficients explode in opposite
  // directions; ridge keeps them small and similar.
  Rng rng(3);
  const std::size_t n = 100;
  la::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = x(i, 0) + rng.normal(0, 0.01);
    y[i] = 2.0 * x(i, 0) + rng.normal(0, 0.2);
  }
  const RidgeResult ridge = fit_ridge(x, y, 0.5);
  EXPECT_LT(std::fabs(ridge.beta[1]), 3.0);
  EXPECT_LT(std::fabs(ridge.beta[2]), 3.0);
  // Nearly symmetric split of the shared signal.
  EXPECT_NEAR(ridge.beta[1], ridge.beta[2], 0.7);
  // Still predicts well.
  EXPECT_GT(ridge.r_squared, 0.9);
}

TEST(Ridge, GcvPicksReasonablePenaltyAndGeneralizes) {
  Rng rng(4);
  const std::size_t n = 120;
  const la::Matrix x = random_design(n, 10, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x(i, 0) - 0.5 * x(i, 1) + rng.normal(0, 1.0);  // 8 pure-noise cols
  }
  const RidgeResult best = fit_ridge_gcv(x, y);
  EXPECT_GT(best.lambda, 0.0);
  // GCV score of the chosen lambda is minimal on the default grid.
  for (double lambda : {1e-4, 1e-2, 1.0, 100.0}) {
    EXPECT_LE(best.gcv, fit_ridge(x, y, lambda).gcv + 1e-9);
  }
}

TEST(Ridge, PredictMatchesTrainingFitted) {
  Rng rng(5);
  const la::Matrix x = random_design(40, 3, rng);
  std::vector<double> y(40);
  for (auto& v : y) v = rng.normal(10, 2);
  const RidgeResult fit = fit_ridge(x, y, 0.3);
  const auto pred = fit.predict(x);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(pred[i], fit.fitted[i], 1e-12);
  }
}

TEST(Ridge, RejectsBadArguments) {
  Rng rng(6);
  const la::Matrix x = random_design(10, 2, rng);
  std::vector<double> y(10, 1.0);
  EXPECT_THROW(fit_ridge(x, y, -1.0), InvalidArgument);
  std::vector<double> bad(9, 1.0);
  EXPECT_THROW(fit_ridge(x, bad, 1.0), InvalidArgument);
}

// ---------------------------------------------------------------- lasso

TEST(Lasso, LambdaMaxZeroesEverything) {
  Rng rng(7);
  const la::Matrix x = random_design(60, 5, rng);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    y[i] = 4.0 * x(i, 0) + rng.normal(0, 0.5);
  }
  const double lmax = lasso_lambda_max(x, y);
  const LassoResult at_max = fit_lasso(x, y, lmax * 1.0001);
  EXPECT_EQ(at_max.nonzero, 0u);
  const LassoResult below = fit_lasso(x, y, lmax * 0.8);
  EXPECT_GE(below.nonzero, 1u);
}

TEST(Lasso, TinyPenaltyApproachesOls) {
  Rng rng(8);
  const la::Matrix x = random_design(100, 3, rng);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    y[i] = 1.0 + 2.0 * x(i, 0) - 3.0 * x(i, 1) + 0.5 * x(i, 2) + rng.normal(0, 0.2);
  }
  const LassoResult lasso = fit_lasso(x, y, 1e-6);
  const OlsResult ols = fit_ols(x, y, {});
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(lasso.beta[j], ols.beta[j], 1e-3) << j;
  }
}

TEST(Lasso, RecoversSparseSupport) {
  // 10 predictors, only 2 active: moderate penalty should find exactly them.
  Rng rng(9);
  const std::size_t n = 200;
  const la::Matrix x = random_design(n, 10, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 5.0 * x(i, 2) - 4.0 * x(i, 7) + rng.normal(0, 0.5);
  }
  const auto path = lasso_path(x, y, 30, 1e-3);
  // Find the sparsest fit with exactly two active predictors.
  for (const LassoResult& fit : path) {
    if (fit.nonzero == 2) {
      const auto active = fit.active_set();
      EXPECT_EQ(active[0], 2u);
      EXPECT_EQ(active[1], 7u);
      return;
    }
  }
  FAIL() << "no path point with exactly two active predictors";
}

TEST(Lasso, PathIsMonotoneInSparsityTrend) {
  Rng rng(10);
  const la::Matrix x = random_design(120, 8, rng);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    y[i] = x(i, 0) + 0.8 * x(i, 1) + 0.6 * x(i, 2) + rng.normal(0, 0.5);
  }
  const auto path = lasso_path(x, y, 20, 1e-3);
  // R² non-decreasing along the path (penalty decreasing).
  for (std::size_t s = 1; s < path.size(); ++s) {
    EXPECT_GE(path[s].r_squared, path[s - 1].r_squared - 1e-9);
    EXPECT_LE(path[s].lambda, path[s - 1].lambda + 1e-12);
  }
}

TEST(Lasso, HandlesCollinearPairWithoutExploding) {
  Rng rng(11);
  const std::size_t n = 150;
  la::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = x(i, 0) + rng.normal(0, 0.01);
    y[i] = 2.0 * x(i, 0) + rng.normal(0, 0.1);
  }
  const LassoResult fit = fit_lasso(x, y, 0.05);
  EXPECT_LT(std::fabs(fit.beta[1]), 5.0);
  EXPECT_LT(std::fabs(fit.beta[2]), 5.0);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Lasso, ConvergesWithinSweepBudget) {
  Rng rng(12);
  const la::Matrix x = random_design(100, 6, rng);
  std::vector<double> y(100);
  for (auto& v : y) v = rng.normal();
  const LassoResult fit = fit_lasso(x, y, 0.01);
  EXPECT_LT(fit.iterations, 10000u);
}

TEST(Lasso, RejectsBadArguments) {
  Rng rng(13);
  const la::Matrix x = random_design(10, 2, rng);
  std::vector<double> y(10, 1.0);
  EXPECT_THROW(fit_lasso(x, y, -0.1), InvalidArgument);
  EXPECT_THROW(lasso_path(x, y, 1, 0.5), InvalidArgument);
  EXPECT_THROW(lasso_path(x, y, 10, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace pwx::regress
