// Figure 4 — MAPE for the four training/validation scenarios.
//
// Paper: 1) four random training workloads ~8.5 %; 2) synthetic-only
// training, SPEC validation = 15.10 % (worst); 3) 10-fold CV on everything
// = 7.55 %; 4) 10-fold CV on synthetic only (best, least realistic).
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header(
      "Figure 4: MAPE for training scenarios 1-4",
      "scenario 2 (train synthetic, validate SPEC) is clearly worst at 15.1 %; "
      "10-fold scenarios sit near 7.5 %");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();

  // Fixed documented draw: seed 1, stratified to at least two workloads per
  // suite (an unconstrained 4-workload draw can be degenerate; see below).
  const auto s1 = core::scenario_random_workloads(*p.training, p.spec, 4,
                                                  bench::kScenario1Seed, 2);
  const auto s2 = core::scenario_synthetic_to_spec(*p.training, p.spec);
  const auto s3 = core::scenario_kfold_all(*p.training, p.spec, 10, bench::kCvSeed);
  const auto s4 =
      core::scenario_kfold_synthetic(*p.training, p.spec, 10, bench::kCvSeed);

  TablePrinter table({"scenario", "description", "paper MAPE", "our MAPE"});
  table.row({"1", "train on 4 random workloads, validate rest", "~8.5",
             format_double(s1.mape, 2)});
  table.row({"2", "train roco2 only, validate SPEC OMP2012", "15.10",
             format_double(s2.mape, 2)});
  table.row({"3", "10-fold CV, all experiments", "7.55", format_double(s3.mape, 2)});
  table.row({"4", "10-fold CV, synthetic experiments only", "~6.5",
             format_double(s4.mape, 2)});
  table.print(std::cout);

  std::puts("\nscenario-1 sensitivity (the paper reports a single draw; with only\n"
            "four training workloads the result depends strongly on the draw —\n"
            "degenerate draws produce diverging extrapolations, the instability\n"
            "the paper attributes to limited training sets):");
  TablePrinter sens({"draw seed", "MAPE [%]"});
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 99ull, 123ull}) {
    const auto s = core::scenario_random_workloads(*p.training, p.spec, 4, seed, 2);
    sens.row({std::to_string(seed), format_double(s.mape, 2)});
  }
  sens.print(std::cout);

  std::printf("\nshape check: scenario 2 >> scenario 3 (%.2f vs %.2f) and the\n"
              "synthetic-only CV (scenario 4) is no better guide to real\n"
              "workloads than scenario 3 — the paper's central stability result.\n",
              s2.mape, s3.mape);
  return 0;
}
