#include "fault/inject.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pwx::fault {

namespace {

// ActivityCounts is a standard-layout aggregate of native-event doubles;
// fault injection corrupts one of them picked uniformly, the way a glitching
// read corrupts whichever counter the kernel handed back last.
constexpr std::size_t kCounterFields = sizeof(pmc::ActivityCounts) / sizeof(double);
static_assert(sizeof(pmc::ActivityCounts) == kCounterFields * sizeof(double),
              "ActivityCounts must stay a pure double aggregate for fault injection");

double* counter_field(pmc::ActivityCounts& counts, std::size_t index) {
  return reinterpret_cast<double*>(&counts) + (index % kCounterFields);
}

/// Hardware counters on Haswell are 48 bits wide; a wrap shows up as the
/// value having lost 2^48.
constexpr double kCounterWrap = 281474976710656.0;  // 2^48

}  // namespace

void RunFaultReport::merge(const RunFaultReport& other) {
  for (const auto& [name, count] : other.injected) {
    injected[name] += count;
  }
  flagged = flagged || other.flagged;
}

RunFaultReport apply_run_faults(const FaultInjector& injector, const std::string& site,
                                sim::RunResult& run) {
  RunFaultReport report;
  const auto note = [&](FaultKind kind, bool detectable) {
    report.injected[std::string(fault_kind_name(kind))] += 1;
    report.flagged = report.flagged || detectable;
  };

  // Value-level faults on the original interval indices.
  for (std::size_t i = 0; i < run.intervals.size(); ++i) {
    sim::IntervalRecord& interval = run.intervals[i];
    if (i > 0 && injector.fires(FaultKind::StuckCounter, site, i)) {
      interval.counts = run.intervals[i - 1].counts;  // silent: looks plausible
      note(FaultKind::StuckCounter, false);
    }
    if (injector.fires(FaultKind::OverflowWrap, site, i)) {
      const std::size_t field = static_cast<std::size_t>(
          injector.draw(FaultKind::OverflowWrap, site, i) * kCounterFields);
      *counter_field(interval.counts, field) -= kCounterWrap;
      note(FaultKind::OverflowWrap, true);
    }
    if (injector.fires(FaultKind::NanDelta, site, i)) {
      const std::size_t field = static_cast<std::size_t>(
          injector.draw(FaultKind::NanDelta, site, i) * kCounterFields);
      *counter_field(interval.counts, field) = std::numeric_limits<double>::quiet_NaN();
      note(FaultKind::NanDelta, true);
    }
    if (injector.fires(FaultKind::NegativeDelta, site, i)) {
      const std::size_t field = static_cast<std::size_t>(
          injector.draw(FaultKind::NegativeDelta, site, i) * kCounterFields);
      double* value = counter_field(interval.counts, field);
      *value = -std::abs(*value) - 1.0;
      note(FaultKind::NegativeDelta, true);
    }
    if (injector.fires(FaultKind::PowerDropout, site, i)) {
      interval.measured_power_watts = 0.0;  // sensor self-reports out of range
      note(FaultKind::PowerDropout, true);
    }
    if (injector.fires(FaultKind::PowerSpike, site, i)) {
      interval.measured_power_watts *= injector.magnitude(FaultKind::PowerSpike, site);
      note(FaultKind::PowerSpike, true);
    }
  }

  // Structural faults: drop / duplicate samples.
  std::vector<sim::IntervalRecord> restructured;
  restructured.reserve(run.intervals.size() + 4);
  for (std::size_t i = 0; i < run.intervals.size(); ++i) {
    if (injector.fires(FaultKind::DropSample, site, i)) {
      note(FaultKind::DropSample, true);  // the timeline gap is observable
      continue;
    }
    restructured.push_back(run.intervals[i]);
    if (injector.fires(FaultKind::DuplicateSample, site, i)) {
      restructured.push_back(run.intervals[i]);  // silent: plausible duplicate
      note(FaultKind::DuplicateSample, false);
    }
  }
  run.intervals = std::move(restructured);

  // Run truncation (the multiplexed run died early).
  if (!run.intervals.empty() && injector.fires(FaultKind::TruncateRun, site, 0)) {
    const double keep_frac =
        0.25 + 0.5 * injector.draw(FaultKind::TruncateRun, site, 0);
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(keep_frac *
                                               static_cast<double>(run.intervals.size()))));
    if (keep < run.intervals.size()) {
      run.intervals.resize(keep);
      note(FaultKind::TruncateRun, true);
    }
  }
  return report;
}

RunFaultReport corrupt_serialized(const FaultInjector& injector, const std::string& site,
                                  std::string& bytes) {
  RunFaultReport report;
  if (bytes.empty()) {
    return report;
  }
  // Up to four independent bit-flip opportunities per serialized run.
  for (std::uint64_t i = 0; i < 4; ++i) {
    if (!injector.fires(FaultKind::CorruptTraceByte, site, i)) {
      continue;
    }
    const double u = injector.draw(FaultKind::CorruptTraceByte, site, i);
    const std::size_t pos =
        std::min(bytes.size() - 1, static_cast<std::size_t>(u * static_cast<double>(bytes.size())));
    const int bit = static_cast<int>(u * 8.0) % 8;
    bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
    report.injected[std::string(fault_kind_name(FaultKind::CorruptTraceByte))] += 1;
    report.flagged = true;
  }
  if (injector.fires(FaultKind::TruncateTrace, site, 0)) {
    const double keep_frac =
        0.2 + 0.6 * injector.draw(FaultKind::TruncateTrace, site, 0);
    const std::size_t keep = std::max<std::size_t>(
        8, static_cast<std::size_t>(keep_frac * static_cast<double>(bytes.size())));
    if (keep < bytes.size()) {
      bytes.resize(keep);
      report.injected[std::string(fault_kind_name(FaultKind::TruncateTrace))] += 1;
      report.flagged = true;
    }
  }
  return report;
}

}  // namespace pwx::fault
