// Performance of the OTF2-lite trace layer: building traces through the
// metric plugins, binary serialization, phase-profile generation, and
// multi-run campaign ingestion (N trace files -> merged phase-profile rows).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <sstream>

#include "acquire/campaign.hpp"
#include "sim/engine.hpp"
#include "trace/mapped.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwx;

sim::RunResult benchmark_run() {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.05;  // fine-grained: ~800 intervals for md
  rc.duration_scale = 1.0;
  return engine.run(*workloads::find_workload("md"), rc);
}

const sim::RunResult& shared_run() {
  static const sim::RunResult run = benchmark_run();
  return run;
}

std::vector<pmc::Preset> four_events() {
  return {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS, pmc::Preset::PRF_DM,
          pmc::Preset::BR_MSP};
}

void BM_BuildTrace(benchmark::State& state) {
  const auto& run = shared_run();
  for (auto _ : state) {
    const trace::Trace t = trace::build_standard_trace(run, four_events());
    benchmark::DoNotOptimize(t.events().size());
  }
  state.counters["events"] = benchmark::Counter(static_cast<double>(
      trace::build_standard_trace(run, four_events()).events().size()));
}
BENCHMARK(BM_BuildTrace)->Unit(benchmark::kMillisecond);

void BM_SerializeTrace(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  for (auto _ : state) {
    std::ostringstream os;
    trace::write_trace(t, os);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_SerializeTrace)->Unit(benchmark::kMillisecond);

void BM_DeserializeTrace(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  std::ostringstream os;
  trace::write_trace(t, os);
  const std::string data = os.str();
  for (auto _ : state) {
    std::istringstream is(data);
    const trace::Trace loaded = trace::read_trace(is);
    benchmark::DoNotOptimize(loaded.events().size());
  }
  state.counters["bytes"] = benchmark::Counter(static_cast<double>(data.size()));
}
BENCHMARK(BM_DeserializeTrace)->Unit(benchmark::kMillisecond);

void BM_PhaseProfiles(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  for (auto _ : state) {
    const auto profiles = trace::build_phase_profiles(t);
    benchmark::DoNotOptimize(profiles.size());
  }
}
BENCHMARK(BM_PhaseProfiles)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------- campaign ingest

// A multiplexed acquisition campaign's trace set: pairs of runs per
// (workload, frequency) configuration, each pair recording a different
// event group, so ingestion has real merging to do.
const std::vector<std::string>& campaign_files(std::size_t count) {
  static std::map<std::size_t, std::vector<std::string>> cache;
  auto it = cache.find(count);
  if (it != cache.end()) {
    return it->second;
  }
  const sim::Engine engine = sim::Engine::haswell_ep();
  const char* names[] = {"md", "compute", "matmul", "memory_read"};
  const double freqs[] = {1.2, 1.9, 2.4};
  const std::vector<pmc::Preset> groups[2] = {
      {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS},
      {pmc::Preset::PRF_DM, pmc::Preset::BR_MSP}};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("pwx_perf_trace_" + std::to_string(count));
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < count; ++i) {
    sim::RunConfig rc;
    rc.interval_s = 0.05;
    rc.duration_scale = 1.0;
    rc.frequency_ghz = freqs[(i / 8) % 3];
    rc.seed = 1000 + i;
    const auto workload = workloads::find_workload(names[(i / 2) % 4]);
    const sim::RunResult run = engine.run(*workload, rc);
    const trace::Trace t = trace::build_standard_trace(run, groups[i % 2]);
    const std::string path = (dir / ("trace_" + std::to_string(i) + ".otf2l")).string();
    trace::write_trace_file(t, path);
    paths.push_back(path);
  }
  return cache.emplace(count, std::move(paths)).first->second;
}

void BM_ProfileCampaign(benchmark::State& state) {
  const auto& paths = campaign_files(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const acquire::Dataset dataset = acquire::ingest_trace_files(paths);
    benchmark::DoNotOptimize(dataset.size());
  }
  state.counters["rows"] = benchmark::Counter(
      static_cast<double>(acquire::ingest_trace_files(paths).size()));
}
BENCHMARK(BM_ProfileCampaign)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------- mapped ingest
//
// The zero-copy benches below are gated by bench_ingest_gate against
// *buffered* timings captured under these names before the mmap path landed
// (bench/perf_baseline.json), so the reported speedup is mapped-now vs
// buffered-then on identical fixtures. Each fixture first asserts the mapped
// output is bit-identical to the buffered output — a fast wrong answer must
// never pass the gate.
//
// Fixtures are campaign-scale: the ROADMAP's target is multi-GB trace
// directories, so the gated files carry hundreds of thousands of events
// (multi-MB), where ingestion cost is dominated by moving bytes rather than
// by per-open fixed costs. The sim-generated ~100 KB files above stay as the
// fixtures for the (ungated) end-to-end acquire benches.

// A synthetic but structurally faithful campaign trace: phase regions with
// async power/voltage samples and counter increments at a fixed cadence.
// ~602 events per (rep, phase); `reps` scales the file size.
trace::Trace large_trace(const char* workload, double frequency_ghz,
                         const std::vector<pmc::Preset>& group, int reps,
                         std::uint64_t salt) {
  trace::Trace t;
  t.set_attribute("workload", workload);
  t.set_attribute("frequency_ghz", frequency_ghz);
  t.set_attribute("threads", 24.0);
  const auto power =
      t.define_metric({"power", "W", trace::MetricMode::AsyncAverage});
  const auto volt =
      t.define_metric({"core_voltage", "V", trace::MetricMode::AsyncInstant});
  std::vector<std::uint32_t> ctrs;
  for (const pmc::Preset preset : group) {
    ctrs.push_back(t.define_metric({trace::ApapiPlugin::metric_name(preset),
                                    "events", trace::MetricMode::CounterIncrement}));
  }
  std::uint64_t now = 0;
  const char* phases[3] = {"compute", "memory", "idle"};
  for (int rep = 0; rep < reps; ++rep) {
    for (const char* phase : phases) {
      t.append(trace::RegionEnter{now, phase});
      for (int i = 0; i < 100; ++i) {
        now += 1000000;
        t.append(trace::MetricEvent{now, power, 90.0 + ((i + salt) % 13)});
        t.append(trace::MetricEvent{now, volt, 0.9});
        for (const std::uint32_t c : ctrs) {
          t.append(trace::MetricEvent{now, c, 1.0e8 + static_cast<double>(c + salt) * i});
        }
      }
      t.append(trace::RegionExit{now, phase});
      now += 1000000;
    }
  }
  return t;
}

// Single-file gate fixture: ~198k events, ~4 MB.
const std::string& shared_trace_path() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "pwx_perf_ingest.otf2l").string();
    trace::write_trace_file(large_trace("md", 2.4, four_events(), 110, 0), p);
    return p;
  }();
  return path;
}

// Campaign gate fixture: 64 files x ~198k events (~4.2 MB each), multiplexed
// counter-group pairs across workloads and frequencies so the merge stage
// has real work to do.
const std::vector<std::string>& mapped_campaign_files(std::size_t count) {
  static std::map<std::size_t, std::vector<std::string>> cache;
  auto it = cache.find(count);
  if (it != cache.end()) {
    return it->second;
  }
  const char* names[] = {"md", "compute", "matmul", "memory_read"};
  const double freqs[] = {1.2, 1.9, 2.4};
  const std::vector<pmc::Preset> groups[2] = {
      {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS},
      {pmc::Preset::PRF_DM, pmc::Preset::BR_MSP}};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("pwx_perf_mapped_" + std::to_string(count));
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < count; ++i) {
    const trace::Trace t = large_trace(names[(i / 2) % 4], freqs[(i / 8) % 3],
                                       groups[i % 2], 110, i);
    const std::string path = (dir / ("trace_" + std::to_string(i) + ".otf2l")).string();
    trace::write_trace_file(t, path);
    paths.push_back(path);
  }
  return cache.emplace(count, std::move(paths)).first->second;
}

bool profiles_bit_identical(const std::vector<trace::PhaseProfile>& a,
                            const std::vector<trace::PhaseProfile>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].workload != b[i].workload || a[i].phase != b[i].phase ||
        a[i].frequency_ghz != b[i].frequency_ghz || a[i].threads != b[i].threads ||
        a[i].elapsed_s != b[i].elapsed_s ||
        a[i].avg_power_watts != b[i].avg_power_watts ||
        a[i].avg_voltage != b[i].avg_voltage ||
        a[i].counter_rates != b[i].counter_rates) {
      return false;
    }
  }
  return true;
}

// Live buffered reference on the same fixture (not gated — the gate compares
// against the frozen pre-mmap numbers, this shows the current buffered cost).
void BM_IngestToProfilesBuffered(benchmark::State& state) {
  const std::string& path = shared_trace_path();
  for (auto _ : state) {
    const auto profiles = trace::build_phase_profiles(trace::read_trace_file(path));
    benchmark::DoNotOptimize(profiles.size());
  }
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_IngestToProfilesBuffered)->Unit(benchmark::kMillisecond);

// Single file, deserialize-to-profiles: the tentpole hot path. Checksum
// verification is deferred (MapOptions) — integrity for this fixture is
// covered by the buffered comparison pass below.
void BM_IngestToProfilesMapped(benchmark::State& state) {
  const std::string& path = shared_trace_path();
  const auto buffered = trace::build_phase_profiles(trace::read_trace_file(path));
  {
    const auto mapped = trace::MappedTraceFile::open(path);
    if (!mapped.mapped() ||
        !profiles_bit_identical(trace::build_phase_profiles(mapped.view()), buffered)) {
      state.SkipWithError("mapped ingestion diverged from buffered");
      return;
    }
  }
  for (auto _ : state) {
    const auto file = trace::MappedTraceFile::open(path, {.verify_checksum = false});
    const auto profiles = trace::build_phase_profiles(file.view());
    benchmark::DoNotOptimize(profiles.size());
  }
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_IngestToProfilesMapped)->Unit(benchmark::kMillisecond);

// Same path with the checksum pass included, so the gate report shows what
// deferral buys (not gated).
void BM_IngestToProfilesMappedVerify(benchmark::State& state) {
  const std::string& path = shared_trace_path();
  for (auto _ : state) {
    const auto file = trace::MappedTraceFile::open(path);
    const auto profiles = trace::build_phase_profiles(file.view());
    benchmark::DoNotOptimize(profiles.size());
  }
}
BENCHMARK(BM_IngestToProfilesMappedVerify)->Unit(benchmark::kMillisecond);

// Live buffered reference for the campaign fixture (not gated).
void BM_ProfileCampaignBuffered(benchmark::State& state) {
  const auto& paths = mapped_campaign_files(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const acquire::Dataset dataset = acquire::ingest_trace_files(paths);
    benchmark::DoNotOptimize(dataset.size());
  }
}
BENCHMARK(BM_ProfileCampaignBuffered)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ProfileCampaignMapped(benchmark::State& state) {
  const auto& paths = mapped_campaign_files(static_cast<std::size_t>(state.range(0)));
  acquire::IngestOptions options;
  options.mmap = true;
  options.verify_checksum = false;
  {
    const acquire::Dataset mapped = acquire::ingest_trace_files(paths, options);
    const acquire::Dataset buffered = acquire::ingest_trace_files(paths);
    bool identical = mapped.size() == buffered.size();
    for (std::size_t i = 0; identical && i < mapped.size(); ++i) {
      const acquire::DataRow& m = mapped.rows()[i];
      const acquire::DataRow& b = buffered.rows()[i];
      identical = m.workload == b.workload && m.phase == b.phase &&
                  m.frequency_ghz == b.frequency_ghz && m.threads == b.threads &&
                  m.avg_power_watts == b.avg_power_watts &&
                  m.avg_voltage == b.avg_voltage && m.elapsed_s == b.elapsed_s &&
                  m.counter_rates == b.counter_rates;
    }
    if (!identical) {
      state.SkipWithError("mapped campaign diverged from buffered");
      return;
    }
  }
  for (auto _ : state) {
    const acquire::Dataset dataset = acquire::ingest_trace_files(paths, options);
    benchmark::DoNotOptimize(dataset.size());
  }
}
BENCHMARK(BM_ProfileCampaignMapped)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
