// Epoch-based model hot-swap.
//
// A fleet that retrains online (src/serve) must let live estimators adopt a
// newly trained model without a restart and without a lock on the estimate
// path. LayoutEpoch is the RCU-style publication point: every trained model
// is compiled once into an immutable PublishedModel (model + ModelLayout +
// monotone generation) held by shared_ptr, and readers follow a two-level
// protocol:
//
//   1. Fast path, every estimate: one relaxed atomic load of generation()
//      compared against the generation cached next to the reader's
//      shared_ptr. Unchanged -> evaluate on the cached publication; no lock,
//      no reference-count traffic.
//   2. Slow path, once per swap per reader: re-acquire current() under the
//      epoch mutex and rebuild any layout-dependent scratch state.
//
// Readers therefore never observe a torn model (the publication is immutable
// and reference-counted) and pay for a swap only when one actually happened.
// publish() is totally ordered by the epoch mutex; try_publish() adds a
// compare-and-swap generation guard so a slow retrainer can never overwrite
// a publication it has not seen (the stale-publish fault of
// fault::FaultKind::StaleLayoutPublish exercises exactly this guard).
//
// A short history ring keeps the last kHistory publications reachable by
// generation, which is what lets FleetEstimator remap in-flight DenseSamples
// built against a just-replaced layout instead of dropping them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "core/dense.hpp"
#include "core/model.hpp"

namespace pwx::core {

/// One immutable publication: the trained model, its compiled serving
/// layout, and the monotone generation number. Never mutated after
/// construction — readers share it by shared_ptr.
struct PublishedModel {
  PublishedModel(PowerModel model_in, std::uint64_t generation_in)
      : model(std::move(model_in)), layout(model), generation(generation_in) {}

  PowerModel model;
  ModelLayout layout;
  std::uint64_t generation = 0;
};

/// The swap point between the retraining pipeline and live estimators.
/// Thread-safe; one instance is shared by every reader of one model stream.
class LayoutEpoch {
public:
  /// Number of past publications kept reachable by generation (for
  /// cross-generation sample remapping of in-flight batches).
  static constexpr std::size_t kHistory = 4;

  /// Publishes `model` as generation 1.
  explicit LayoutEpoch(PowerModel model);

  /// Generation of the latest publication (monotone, starts at 1). One
  /// relaxed-ordered atomic load — the per-estimate fast-path check.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Number of hot swaps so far (generation() - 1).
  std::uint64_t swap_count() const { return generation() - 1; }

  /// The current publication. Shared ownership: the returned publication
  /// stays fully usable after any number of later swaps.
  std::shared_ptr<const PublishedModel> current() const;

  /// A retained past (or current) publication by generation; nullptr when
  /// that generation was evicted from the history ring or never existed.
  std::shared_ptr<const PublishedModel> at(std::uint64_t generation) const;

  /// Publish unconditionally; returns the new generation.
  std::uint64_t publish(PowerModel model);

  /// Guarded publish: succeeds only while the current generation still
  /// equals `expected_generation` — the compare-and-swap that keeps a stale
  /// retrainer (one that fit against an already-replaced incumbent) from
  /// clobbering a newer publication. Returns the new generation, or nullopt
  /// when the expectation no longer holds (nothing is published then).
  std::optional<std::uint64_t> try_publish(PowerModel model,
                                           std::uint64_t expected_generation);

private:
  std::uint64_t publish_locked(PowerModel model);

  mutable std::mutex mutex_;
  std::shared_ptr<const PublishedModel> current_;                ///< under mutex_
  std::array<std::shared_ptr<const PublishedModel>, kHistory> history_{};
  /// Published *after* current_/history_ under the mutex; readers that see a
  /// new generation then acquire the matching publication via current().
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace pwx::core
