#include "regress/ridge.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "stats/descriptive.hpp"
#include "stats/standardize.hpp"

namespace pwx::regress {

namespace {

/// Shared machinery: fit on standardized predictors and centered response.
struct Prepared {
  stats::ColumnScaler scaler;
  la::Matrix z;              // standardized predictors
  std::vector<double> yc;    // centered response
  double y_mean = 0.0;
};

Prepared prepare(const la::Matrix& x, std::span<const double> y) {
  PWX_REQUIRE(x.rows() == y.size(), "ridge: X has ", x.rows(), " rows but y has ",
              y.size());
  PWX_REQUIRE(x.rows() > x.cols() + 1, "ridge needs n > k + 1");
  Prepared p;
  p.scaler = stats::ColumnScaler::fit(x);
  p.z = p.scaler.transform(x);
  p.y_mean = stats::mean(y);
  p.yc.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    p.yc[i] = y[i] - p.y_mean;
  }
  return p;
}

RidgeResult solve_for_lambda(const Prepared& p, const la::Matrix& x,
                             std::span<const double> y, double lambda) {
  const std::size_t n = p.z.rows();
  const std::size_t k = p.z.cols();

  // (ZᵀZ + λ n I) b = Zᵀ yc — λ scaled by n so its meaning is per-sample.
  la::Matrix gram = p.z.gram();
  for (std::size_t j = 0; j < k; ++j) {
    gram(j, j) += lambda * static_cast<double>(n);
  }
  const la::CholeskyDecomposition chol(gram);
  const std::vector<double> zty = p.z.multiply_transposed(p.yc);
  const std::vector<double> b_scaled = chol.solve(zty);

  RidgeResult out;
  out.lambda = lambda;
  const auto [beta, shift] = p.scaler.unscale_coefficients(b_scaled);
  out.beta.resize(k + 1);
  out.beta[0] = p.y_mean + shift;
  for (std::size_t j = 0; j < k; ++j) {
    out.beta[j + 1] = beta[j];
  }

  out.fitted = out.predict(x);
  out.residuals.resize(n);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.residuals[i] = y[i] - out.fitted[i];
    ss_res += out.residuals[i] * out.residuals[i];
    ss_tot += p.yc[i] * p.yc[i];
  }
  out.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;

  // Effective dof: 1 (intercept) + Σ_j d_j²/(d_j² + λn) via tr(Z G⁻¹ Zᵀ).
  const la::Matrix ginv = chol.inverse();
  double trace = 1.0;
  // tr(Z G⁻¹ Zᵀ) = Σ_ij (Z G⁻¹)_ij Z_ij.
  const la::Matrix zg = p.z * ginv;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      trace += zg(i, j) * p.z(i, j);
    }
  }
  out.effective_dof = trace;

  const double denom = 1.0 - trace / static_cast<double>(n);
  out.gcv = denom > 0.0
                ? (ss_res / static_cast<double>(n)) / (denom * denom)
                : std::numeric_limits<double>::infinity();
  return out;
}

}  // namespace

std::vector<double> RidgeResult::predict(const la::Matrix& x) const {
  PWX_REQUIRE(x.cols() + 1 == beta.size(), "ridge predict: expected ",
              beta.size() - 1, " columns, got ", x.cols());
  std::vector<double> out(x.rows(), beta[0]);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      out[i] += beta[j + 1] * x(i, j);
    }
  }
  return out;
}

RidgeResult fit_ridge(const la::Matrix& x, std::span<const double> y, double lambda) {
  PWX_REQUIRE(lambda >= 0.0, "ridge penalty must be non-negative");
  const Prepared p = prepare(x, y);
  return solve_for_lambda(p, x, y, lambda);
}

RidgeResult fit_ridge_gcv(const la::Matrix& x, std::span<const double> y,
                          const std::vector<double>& lambdas) {
  std::vector<double> grid = lambdas;
  if (grid.empty()) {
    for (double l = 1e-4; l <= 1e2 + 1e-9; l *= std::sqrt(10.0)) {
      grid.push_back(l);
    }
  }
  const Prepared p = prepare(x, y);
  RidgeResult best;
  bool first = true;
  for (double lambda : grid) {
    PWX_REQUIRE(lambda >= 0.0, "ridge penalty must be non-negative");
    RidgeResult candidate = solve_for_lambda(p, x, y, lambda);
    if (first || candidate.gcv < best.gcv) {
      best = std::move(candidate);
      first = false;
    }
  }
  return best;
}

}  // namespace pwx::regress
