file(REMOVE_RECURSE
  "CMakeFiles/cluster_estimation.dir/cluster_estimation.cpp.o"
  "CMakeFiles/cluster_estimation.dir/cluster_estimation.cpp.o.d"
  "cluster_estimation"
  "cluster_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
