src/cpu/CMakeFiles/pwx_cpu.dir/thermal.cpp.o: \
 /root/repo/src/cpu/thermal.cpp /usr/include/stdc-predef.h \
 /root/repo/src/cpu/thermal.hpp
