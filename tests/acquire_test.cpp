// Tests for dataset assembly and acquisition campaigns.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>

#include "acquire/campaign.hpp"
#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "pmc/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace pwx::acquire {
namespace {

DataRow make_row(const std::string& workload, workloads::Suite suite, double f,
                 std::size_t threads, double power) {
  DataRow row;
  row.workload = workload;
  row.phase = "main";
  row.suite = suite;
  row.frequency_ghz = f;
  row.threads = threads;
  row.avg_power_watts = power;
  row.avg_voltage = 0.9;
  row.elapsed_s = 1.0;
  row.counter_rates[pmc::Preset::TOT_CYC] = f * 1e9 * threads;
  row.counter_rates[pmc::Preset::PRF_DM] = 1e7 * threads;
  return row;
}

Dataset small_dataset() {
  Dataset ds;
  ds.append(make_row("compute", workloads::Suite::Roco2, 2.4, 4, 100));
  ds.append(make_row("compute", workloads::Suite::Roco2, 1.2, 4, 70));
  ds.append(make_row("md", workloads::Suite::SpecOmp, 2.4, 24, 170));
  ds.append(make_row("swim", workloads::Suite::SpecOmp, 2.4, 24, 130));
  return ds;
}

// ---------------------------------------------------------------- dataset

TEST(Dataset, RatePerCycleNormalizesByFrequency) {
  const DataRow row = make_row("x", workloads::Suite::Roco2, 2.0, 8, 100);
  EXPECT_NEAR(row.rate_per_cycle(pmc::Preset::TOT_CYC), 8.0, 1e-12);
  EXPECT_NEAR(row.rate_per_cycle(pmc::Preset::PRF_DM), 8e7 / 2e9, 1e-15);
}

TEST(Dataset, RateOfMissingCounterThrows) {
  const DataRow row = make_row("x", workloads::Suite::Roco2, 2.0, 8, 100);
  EXPECT_THROW(row.rate_per_cycle(pmc::Preset::BR_MSP), InvalidArgument);
  EXPECT_FALSE(row.has(pmc::Preset::BR_MSP));
}

TEST(Dataset, FiltersBySuite) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.filter_suite(workloads::Suite::Roco2).size(), 2u);
  EXPECT_EQ(ds.filter_suite(workloads::Suite::SpecOmp).size(), 2u);
}

TEST(Dataset, FiltersByFrequency) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.filter_frequency(2.4).size(), 3u);
  EXPECT_EQ(ds.filter_frequency(1.2).size(), 1u);
  EXPECT_EQ(ds.filter_frequency(3.0).size(), 0u);
}

TEST(Dataset, FiltersByWorkloadNames) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.filter_workloads({"compute"}).size(), 2u);
  EXPECT_EQ(ds.exclude_workloads({"compute"}).size(), 2u);
  EXPECT_EQ(ds.filter_workloads({"md", "swim"}).size(), 2u);
}

TEST(Dataset, SelectRowsPreservesOrderAndValidates) {
  const Dataset ds = small_dataset();
  const Dataset sub = ds.select_rows({3, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.rows()[0].workload, "swim");
  EXPECT_EQ(sub.rows()[1].workload, "compute");
  EXPECT_THROW(ds.select_rows({9}), InvalidArgument);
}

TEST(Dataset, WorkloadNamesAndGroups) {
  const Dataset ds = small_dataset();
  const auto names = ds.workload_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "compute");
  const auto groups = ds.workload_groups();
  EXPECT_EQ(groups[0], groups[1]);  // both compute rows share the group
  EXPECT_NE(groups[0], groups[2]);
}

TEST(Dataset, EventRateMatrixShapeAndValues) {
  const Dataset ds = small_dataset();
  const la::Matrix x = ds.event_rate_matrix({pmc::Preset::TOT_CYC, pmc::Preset::PRF_DM});
  EXPECT_EQ(x.rows(), 4u);
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_NEAR(x(0, 0), 4.0, 1e-12);  // compute @ 2.4 GHz, 4 threads
}

TEST(Dataset, PowerVoltageFrequencyVectors) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.power().size(), 4u);
  EXPECT_DOUBLE_EQ(ds.power()[2], 170.0);
  EXPECT_DOUBLE_EQ(ds.voltage()[0], 0.9);
  EXPECT_DOUBLE_EQ(ds.frequency_ghz()[1], 1.2);
}

TEST(Dataset, CommonPresetsIntersection) {
  Dataset ds = small_dataset();
  DataRow extra = make_row("nab", workloads::Suite::SpecOmp, 2.4, 24, 140);
  extra.counter_rates.erase(pmc::Preset::PRF_DM);
  ds.append(extra);
  const auto common = ds.common_presets();
  EXPECT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], pmc::Preset::TOT_CYC);
}

// ---------------------------------------------------------------- campaign

TEST(Campaign, MergesAllRequestedCountersAcrossRuns) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  CampaignConfig cfg = standard_campaign_config({2.4});
  cfg.workloads = {workloads::roco2_suite()[2]};  // compute
  cfg.scalable_thread_counts = {4};
  const Dataset ds = run_campaign(engine, cfg);
  ASSERT_EQ(ds.size(), 1u);
  const DataRow& row = ds.rows()[0];
  EXPECT_EQ(row.counter_rates.size(), 54u);
  // One run per event group.
  EXPECT_EQ(row.runs_merged, pmc::runs_required(cfg.events, cfg.budget));
}

TEST(Campaign, RowKeysMatchConfiguration) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  CampaignConfig cfg = standard_campaign_config({1.6, 2.4});
  cfg.workloads = {workloads::roco2_suite()[2]};
  cfg.scalable_thread_counts = {2, 8};
  const Dataset ds = run_campaign(engine, cfg);
  EXPECT_EQ(ds.size(), 4u);  // 2 freqs x 2 thread counts
  std::set<std::pair<double, std::size_t>> keys;
  for (const DataRow& row : ds.rows()) {
    keys.insert({row.frequency_ghz, row.threads});
    EXPECT_EQ(row.workload, "compute");
    EXPECT_GT(row.avg_power_watts, 30.0);
    EXPECT_GT(row.avg_voltage, 0.5);
  }
  EXPECT_EQ(keys.size(), 4u);
}

TEST(Campaign, SpecWorkloadsIgnoreThreadSweep) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  CampaignConfig cfg = standard_campaign_config({2.4});
  cfg.workloads = {workloads::spec_omp2012_suite()[1]};  // bwaves, single phase
  cfg.scalable_thread_counts = {1, 2, 4};
  const Dataset ds = run_campaign(engine, cfg);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.rows()[0].threads, 24u);
}

TEST(Campaign, MultiPhaseWorkloadYieldsRowPerPhase) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  CampaignConfig cfg = standard_campaign_config({2.4});
  cfg.workloads = {*workloads::find_workload("md")};
  const Dataset ds = run_campaign(engine, cfg);
  EXPECT_EQ(ds.size(), 2u);  // force + neighbour phases
  EXPECT_EQ(ds.rows()[0].workload, "md");
  EXPECT_NE(ds.rows()[0].phase, ds.rows()[1].phase);
}

TEST(Campaign, DeterministicForSameSeed) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  CampaignConfig cfg = standard_campaign_config({2.4});
  cfg.workloads = {workloads::roco2_suite()[1]};
  cfg.scalable_thread_counts = {8};
  const Dataset a = run_campaign(engine, cfg);
  const Dataset b = run_campaign(engine, cfg);
  EXPECT_DOUBLE_EQ(a.rows()[0].avg_power_watts, b.rows()[0].avg_power_watts);
  EXPECT_EQ(a.rows()[0].counter_rates, b.rows()[0].counter_rates);
}

TEST(Campaign, SeedChangesMeasurementNoise) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  CampaignConfig cfg = standard_campaign_config({2.4});
  cfg.workloads = {workloads::roco2_suite()[1]};
  cfg.scalable_thread_counts = {8};
  const Dataset a = run_campaign(engine, cfg);
  cfg.seed = 999;
  const Dataset b = run_campaign(engine, cfg);
  EXPECT_NE(a.rows()[0].avg_power_watts, b.rows()[0].avg_power_watts);
  // But only by noise, not systematically.
  EXPECT_NEAR(a.rows()[0].avg_power_watts / b.rows()[0].avg_power_watts, 1.0, 0.05);
}

TEST(Campaign, RejectsEmptyConfigs) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  CampaignConfig cfg;
  EXPECT_THROW(run_campaign(engine, cfg), InvalidArgument);
  cfg = standard_campaign_config({});
  cfg.workloads = workloads::roco2_suite();
  EXPECT_THROW(run_campaign(engine, cfg), InvalidArgument);
}

TEST(Campaign, StandardDatasetsAreCachedAndConsistent) {
  const Dataset& a = standard_selection_dataset();
  const Dataset& b = standard_selection_dataset();
  EXPECT_EQ(&a, &b);  // same object: acquired once
  EXPECT_GT(a.size(), 50u);
  // All rows at the selection frequency.
  for (const DataRow& row : a.rows()) {
    EXPECT_DOUBLE_EQ(row.frequency_ghz, 2.4);
  }
  const Dataset& train = standard_training_dataset();
  std::set<double> freqs;
  for (const DataRow& row : train.rows()) {
    freqs.insert(row.frequency_ghz);
  }
  EXPECT_EQ(freqs.size(), 5u);  // the paper's five DVFS states
}

TEST(Campaign, IngestTraceFilesMergesMultiplexedRuns) {
  // Two runs of the same configuration, each recording a different event
  // group — the multiplexed-acquisition layout ingest_trace_files reduces.
  const sim::Engine engine = sim::Engine::haswell_ep();
  // Pid-suffixed so parallel ctest processes never share fixture files.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pwx_acquire_ingest_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::vector<pmc::Preset> groups[2] = {
      {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS},
      {pmc::Preset::PRF_DM, pmc::Preset::BR_MSP}};
  std::vector<std::string> paths;
  for (int i = 0; i < 2; ++i) {
    sim::RunConfig rc;
    rc.interval_s = 0.25;
    rc.duration_scale = 0.1;
    rc.seed = 11 + i;
    const auto workload = workloads::find_workload("compute");
    const trace::Trace t =
        trace::build_standard_trace(engine.run(*workload, rc), groups[i]);
    paths.push_back((dir / ("run" + std::to_string(i) + ".otf2l")).string());
    trace::write_trace_file(t, paths.back());
  }

  const Dataset ds = ingest_trace_files(paths);
  ASSERT_EQ(ds.size(), 1u);
  const DataRow& row = ds.rows()[0];
  EXPECT_EQ(row.workload, "compute");
  EXPECT_EQ(row.suite, workloads::Suite::Roco2);  // registry lookup
  EXPECT_EQ(row.runs_merged, 2u);
  EXPECT_TRUE(row.has(pmc::Preset::TOT_CYC));
  EXPECT_TRUE(row.has(pmc::Preset::TOT_INS));
  EXPECT_TRUE(row.has(pmc::Preset::PRF_DM));
  EXPECT_TRUE(row.has(pmc::Preset::BR_MSP));
  EXPECT_GT(row.avg_power_watts, 0.0);
  EXPECT_TRUE(ds.quality().clean());
  EXPECT_EQ(ds.quality().sanitize.rows_checked, 1u);
}

TEST(Campaign, IngestTraceFilesOfEmptyPathListIsEmpty) {
  const Dataset ds = ingest_trace_files({});
  EXPECT_TRUE(ds.empty());
  EXPECT_TRUE(ds.quality().clean());
}

}  // namespace
}  // namespace pwx::acquire
