#include "trace/trace.hpp"

#include <charconv>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pwx::trace {

std::uint32_t Trace::define_metric(MetricDefinition definition) {
  PWX_REQUIRE(!definition.name.empty(), "metric needs a name");
  PWX_REQUIRE(metric_by_name_.find(definition.name) == metric_by_name_.end(),
              "duplicate metric '", definition.name, "'");
  const auto index = static_cast<std::uint32_t>(metrics_.size());
  metric_by_name_.emplace(definition.name, index);
  metrics_.push_back(std::move(definition));
  return index;
}

std::uint32_t Trace::metric_index(const std::string& name) const {
  const auto it = metric_by_name_.find(name);
  PWX_REQUIRE(it != metric_by_name_.end(), "unknown metric '", name, "'");
  return it->second;
}

bool Trace::has_metric(const std::string& name) const {
  return metric_by_name_.find(name) != metric_by_name_.end();
}

std::uint64_t Trace::event_time(const Event& event) {
  return std::visit([](const auto& e) { return e.time_ns; }, event);
}

void Trace::append(Event event) {
  const std::uint64_t t = event_time(event);
  PWX_REQUIRE(t >= last_time_ns_, "events must be chronological: ", t, " after ",
              last_time_ns_);
  if (const auto* metric = std::get_if<MetricEvent>(&event)) {
    PWX_REQUIRE(metric->metric < metrics_.size(), "metric index ", metric->metric,
                " not defined");
  }
  last_time_ns_ = t;
  events_.push_back(std::move(event));
}

void Trace::set_attribute(const std::string& key, const std::string& value) {
  attributes_[key] = value;
}

void Trace::set_attribute(const std::string& key, double value) {
  attributes_[key] = format_double(value, 9);
}

const std::string& Trace::attribute(const std::string& key) const {
  const auto it = attributes_.find(key);
  PWX_REQUIRE(it != attributes_.end(), "missing trace attribute '", key, "'");
  return it->second;
}

double Trace::attribute_as_double(const std::string& key) const {
  const std::string& text = attribute(key);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  PWX_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
              "trace attribute '", key, "' is not numeric: '", text, "'");
  return value;
}

}  // namespace pwx::trace
