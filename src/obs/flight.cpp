#include "obs/flight.hpp"

#include <fstream>
#include <utility>

#include "common/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace pwx::obs {

namespace {

const char* level_slug(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

// Free-function adapters: the trace tap and log hook are plain function
// pointers, so they route through the singleton.
void span_tap(const SpanRecord& record) { flight().note_span(record); }

void log_hook(LogLevel level, const std::string& line) {
  flight().note_log(level, line);
}

}  // namespace

void FlightRecorder::arm(FlightConfig config) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    config_ = std::move(config);
    if (config_.capacity == 0) {
      config_.capacity = 1;
    }
    ring_.clear();
    ring_.reserve(config_.capacity);
    seq_ = 0;
    dropped_ = 0;
    dump_count_ = 0;
    last_counters_.clear();
    armed_.store(true, std::memory_order_relaxed);
  }
  // Hooks installed after armed_: a racing note_* sees a consistent ring.
  set_log_hook(&log_hook);
  trace_detail::set_flight_tap(&span_tap);
}

void FlightRecorder::disarm() {
  trace_detail::set_flight_tap(nullptr);
  set_log_hook(nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
}

void FlightRecorder::push_line(std::string line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) {
    return;
  }
  if (ring_.size() < config_.capacity) {
    ring_.push_back(std::move(line));
  } else {
    ring_[seq_ % config_.capacity] = std::move(line);
    dropped_ += 1;
  }
  seq_ += 1;
}

void FlightRecorder::note_span(const SpanRecord& record) {
  if (!armed()) {
    return;
  }
  push_line(span_to_jsonl_line(record));
}

void FlightRecorder::note_log(LogLevel level, const std::string& line) {
  if (!armed()) {
    return;
  }
  Json::Object event;
  event["event"] = Json("log");
  event["level"] = Json(level_slug(level));
  event["line"] = Json(line);
  push_line(Json(std::move(event)).dump(-1));
}

void FlightRecorder::note_metrics(const MetricsSnapshot& snapshot) {
  if (!armed()) {
    return;
  }
  Json::Object deltas;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const MetricValue& value : snapshot.values) {
      if (value.kind != MetricKind::Counter) {
        continue;
      }
      const auto previous = last_counters_.find(value.name);
      const std::uint64_t before =
          previous == last_counters_.end() ? 0 : previous->second;
      if (value.counter != before) {
        deltas[value.name] =
            Json(static_cast<std::int64_t>(value.counter - before));
      }
      last_counters_[value.name] = value.counter;
    }
  }
  if (deltas.empty()) {
    return;
  }
  Json::Object event;
  event["event"] = Json("metrics_delta");
  event["deltas"] = Json(std::move(deltas));
  push_line(Json(std::move(event)).dump(-1));
}

std::string FlightRecorder::trigger(std::string_view reason) {
  std::string path;
  std::string body;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_.load(std::memory_order_relaxed) ||
        dump_count_ >= config_.max_dumps) {
      return "";
    }
    path = config_.dump_path;
    if (dump_count_ > 0) {
      path += '.' + std::to_string(dump_count_);
    }
    dump_count_ += 1;

    Json::Object header;
    header["event"] = Json("flight_dump");
    header["reason"] = Json(std::string(reason));
    header["t_s"] = Json(config_.clock ? config_.clock() : monotonic_s());
    header["events"] = Json(ring_.size());
    header["dropped"] = Json(static_cast<std::size_t>(dropped_));
    body = Json(std::move(header)).dump(-1);
    body += '\n';
    // Oldest first: when full, the next overwrite slot is the oldest line.
    const std::size_t size = ring_.size();
    const std::size_t start = size < config_.capacity ? 0 : seq_ % config_.capacity;
    for (std::size_t i = 0; i < size; ++i) {
      body += ring_[(start + i) % size];
      body += '\n';
    }
  }
  // The full registry snapshot rides along so the dump is self-contained
  // (taken outside the lock: snapshot() is independently synchronized).
  body += to_jsonl_line(registry().snapshot(), dump_count_ - 1);
  body += '\n';
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return "";
  }
  out << body;
  out.flush();
  return path;
}

std::uint64_t FlightRecorder::dumps() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dump_count_;
}

std::vector<std::string> FlightRecorder::recent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(ring_.size());
  const std::size_t size = ring_.size();
  const std::size_t start = size < config_.capacity ? 0 : seq_ % config_.capacity;
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(ring_[(start + i) % size]);
  }
  return out;
}

FlightRecorder& flight() {
  static FlightRecorder instance;  // NOLINT: intentional process lifetime
  return instance;
}

}  // namespace pwx::obs
