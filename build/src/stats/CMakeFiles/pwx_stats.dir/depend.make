# Empty dependencies file for pwx_stats.
# This may be replaced when dependencies are built.
