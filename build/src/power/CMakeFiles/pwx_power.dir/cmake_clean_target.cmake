file(REMOVE_RECURSE
  "libpwx_power.a"
)
