#include "power/ground_truth.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pwx::power {

GroundTruthPower::GroundTruthPower(EnergyTable energies, StaticParameters statics,
                                   cpu::ThermalModel thermal)
    : energies_(energies), statics_(statics), thermal_(thermal) {
  PWX_REQUIRE(statics_.reference_voltage > 0.0, "reference voltage must be positive");
  PWX_REQUIRE(statics_.socket_dram_bandwidth_gbs > 0.0, "bandwidth must be positive");
}

GroundTruthPower GroundTruthPower::haswell_ep() {
  return GroundTruthPower(EnergyTable{}, StaticParameters{}, cpu::ThermalModel{});
}

double GroundTruthPower::vr_efficiency(double package_watts) {
  // Buck converters are least efficient at light load; 84 % rising towards
  // 90 % under heavy load is typical for a server VRM.
  return 0.84 + 0.055 * package_watts / (package_watts + 60.0);
}

PowerBreakdown GroundTruthPower::socket_power(const SocketActivity& a) const {
  PWX_REQUIRE(a.duration_s > 0.0, "socket activity needs a positive duration");
  PWX_REQUIRE(a.voltage > 0.0, "socket activity needs a positive voltage");
  const EnergyTable& e = energies_;
  const double nj = 1e-9;
  const double vscale = (a.voltage / statics_.reference_voltage) *
                        (a.voltage / statics_.reference_voltage);
  const pmc::ActivityCounts& c = a.counts;

  // Visible core-dynamic energy: per-event accounting.
  double core_joules = 0.0;
  core_joules += e.per_cycle_nj * nj * c.cycles;
  core_joules += e.per_load_nj * nj * c.load_ins;
  core_joules += e.per_store_nj * nj * c.store_ins;
  const double l2_accesses = c.l2_data_read + c.l2_data_write + c.l2_inst_read;
  core_joules += e.per_l2_access_nj * nj * l2_accesses;
  core_joules += e.per_branch_misp_nj * nj * c.branch_misp;
  core_joules += e.per_tlb_walk_nj * nj * (c.tlb_data_miss + c.tlb_inst_miss);

  // Hidden core-dynamic energy. Execution is billed per *uop*, not per
  // retired instruction — the counters only see instructions, so the
  // workload-dependent uop expansion is invisible to the model. The AVX-unit
  // energy is likewise unobservable (Haswell has no usable FP/SIMD presets).
  double hidden_joules = 0.0;
  hidden_joules += e.per_avx256_nj * nj * a.avx256_instructions;
  hidden_joules += e.per_uop_nj * nj * a.uops;

  // Uncore dynamic: L3/ring + IMC traffic.
  double uncore_joules = 0.0;
  const double l3_accesses = c.l3_data_read + c.l3_data_write + c.l3_inst_read;
  uncore_joules += e.per_l3_access_nj * nj * l3_accesses;
  uncore_joules += e.per_dram_access_nj * nj * c.l3_total_miss;
  uncore_joules += e.per_prefetch_nj * nj * c.prefetch_miss;
  uncore_joules += e.per_snoop_nj * nj * c.snoop_requests;
  uncore_joules += e.per_dram_byte_nj * nj * a.dram_bytes;

  PowerBreakdown out;
  out.core_dynamic = core_joules * vscale * a.dynamic_scale / a.duration_s;
  out.hidden_dynamic = hidden_joules * vscale * a.dynamic_scale / a.duration_s;
  out.uncore_dynamic = uncore_joules * vscale / a.duration_s;
  out.uncore_static = statics_.uncore_static_watts *
                      (0.8 + 0.2 * a.frequency_ghz / 2.6);
  out.board = statics_.board_watts + a.baseline_offset_watts;

  // Leakage/temperature fixed point: leakage feeds temperature feeds leakage.
  const double v_leak = a.voltage / statics_.reference_voltage;
  const double n_active = static_cast<double>(a.active_cores);
  const double n_idle =
      static_cast<double>(a.total_cores) - static_cast<double>(a.active_cores);
  double temperature = thermal_.ambient_celsius + 20.0;  // warm start
  double leakage = 0.0;
  for (int iteration = 0; iteration < 8; ++iteration) {
    const double temp_factor =
        std::exp((temperature - statics_.leak_temp_ref_c) / statics_.leak_temp_scale_c);
    const double per_core = statics_.core_leak_watts * v_leak * temp_factor;
    leakage = per_core * (n_active + statics_.gated_leak_fraction * n_idle);
    const double package = out.core_dynamic + out.hidden_dynamic +
                           out.uncore_dynamic + out.uncore_static + leakage;
    temperature = thermal_.steady_state_temperature(package);
  }
  out.core_leakage = leakage;
  out.die_temperature_c = temperature;
  return out;
}

double GroundTruthPower::input_watts(const PowerBreakdown& b) const {
  const double package = b.package_total();
  return package / vr_efficiency(package) + b.board;
}

double GroundTruthPower::socket_input_watts(const SocketActivity& activity) const {
  return input_watts(socket_power(activity));
}

}  // namespace pwx::power
