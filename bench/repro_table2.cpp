// Table II — Summary of results for 10-fold cross validation.
//
// Paper: R² in [0.9904, 0.9913] (mean 0.9910), Adj.R² trailing by ~0.0004,
// MAPE in [6.61, 8.32] with mean 7.55, across all workloads and DVFS states.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/validate.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Table II: 10-fold cross validation across all DVFS states",
                      "R2 ~0.991, Adj.R2 ~R2-0.0004, MAPE 6.61..8.32 (mean 7.55)");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  const core::CvSummary cv =
      core::k_fold_cross_validation(*p.training, p.spec, 10, bench::kCvSeed);

  std::puts("paper reference (Table II):");
  TablePrinter ref({"Metric", "Min", "Max", "Mean"});
  ref.row({"R2", "0.9904", "0.9913", "0.9910"});
  ref.row({"Adj.R2", "0.9900", "0.9910", "0.9906"});
  ref.row({"MAPE", "6.6114", "8.3198", "7.5452"});
  ref.print(std::cout);

  std::printf("\nthis reproduction (%zu rows, events:", p.training->size());
  for (pmc::Preset e : p.spec.events) {
    std::printf(" %s", std::string(pmc::preset_name(e)).c_str());
  }
  std::puts("):");
  TablePrinter ours({"Metric", "Min", "Max", "Mean"});
  ours.row({"R2", format_double(cv.min.r_squared, 4), format_double(cv.max.r_squared, 4),
            format_double(cv.mean.r_squared, 4)});
  ours.row({"Adj.R2", format_double(cv.min.adj_r_squared, 4),
            format_double(cv.max.adj_r_squared, 4),
            format_double(cv.mean.adj_r_squared, 4)});
  ours.row({"MAPE", format_double(cv.min.mape, 4), format_double(cv.max.mape, 4),
            format_double(cv.mean.mape, 4)});
  ours.print(std::cout);

  std::printf("\nshape check: high R2 with Adj.R2 trailing by only %.4f, and MAPE\n"
              "in the high single digits — the paper's combination of an "
              "excellent\nvariance fit with a noticeable relative error.\n",
              cv.mean.r_squared - cv.mean.adj_r_squared);
  return 0;
}
