# Empty compiler generated dependencies file for ablation_hcse.
# This may be replaced when dependencies are built.
