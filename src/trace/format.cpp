#include "trace/format.hpp"

#include <cstring>
#include <string>
#include <unordered_set>

#include "common/error.hpp"

namespace pwx::trace::format {

void fnv1a_update(std::uint64_t& hash, const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
}

std::uint64_t fnv1a_lanes(const char* data, std::size_t size) {
  std::uint64_t hash = kFnvOffset;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, 8);
    hash ^= word;
    hash *= kFnvPrime;
  }
  if (i < size) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, size - i);
    hash ^= word;
    hash *= kFnvPrime;
  }
  hash ^= static_cast<std::uint64_t>(size);
  hash *= kFnvPrime;
  return hash;
}

namespace {

/// Bounds-checked cursor over a v4 body. Identical twin of the v3 BufReader,
/// except it reports offsets relative to the shared v4 frame (body starts at
/// file offset kMagicBytes) and serves BOTH readers, which is what makes
/// mapped and buffered rejection bit-identical.
class BodyCursor {
public:
  BodyCursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  const char* at(std::size_t pos) const { return data_ + pos; }

  [[noreturn]] void fail(const std::string& what, std::int64_t record = -1,
                         std::size_t at_pos = static_cast<std::size_t>(-1)) const {
    const std::size_t pos = at_pos == static_cast<std::size_t>(-1) ? pos_ : at_pos;
    const std::size_t offset = pos + kMagicBytes;
    throw IoError("trace: " + what + " (byte " + std::to_string(offset) +
                      ", record " + std::to_string(record) + ")",
                  static_cast<std::int64_t>(offset), record);
  }

  const char* raw(std::size_t size) {
    if (size > remaining()) {
      fail("unexpected end of stream", -1, size_);
    }
    const char* ptr = data_ + pos_;
    pos_ += size;
    return ptr;
  }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    std::memcpy(&v, raw(1), 1);
    return v;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    std::memcpy(&v, raw(4), 4);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    std::memcpy(&v, raw(8), 8);
    return v;
  }

  std::string_view string() {
    const std::uint32_t len = u32();
    if (len > (1u << 24)) {
      fail("implausible string length " + std::to_string(len));
    }
    return {raw(len), len};
  }

  /// Consume the zero padding between `content_end` and `section_end`; any
  /// nonzero pad byte is a structural error (it would otherwise only show up
  /// as an unlocalized checksum mismatch).
  void skip_padding(std::size_t section_end) {
    while (pos_ < section_end) {
      if (u8() != 0) {
        fail("nonzero section padding", -1, pos_ - 1);
      }
    }
  }

private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

TraceView ParsedTraceV4::view() const {
  TraceView v;
  v.columns.times = {times, event_count};
  v.columns.kinds = {kinds, event_count};
  v.columns.ids = {ids, event_count};
  v.columns.values = {values, event_count};
  v.columns.regions = regions;
  v.metrics = metrics;
  v.attributes = attributes;
  return v;
}

ParsedTraceV4 parse_trace_v4(const char* body, std::size_t body_size) {
  PWX_CHECK(reinterpret_cast<std::uintptr_t>(body) % 8 == 0,
            "v4 body must be 8-byte aligned");
  BodyCursor cursor(body, body_size);
  ParsedTraceV4 out;

  // Section table. A table that doesn't fit is an end-of-stream error at the
  // cut, mirroring the v3 contract for truncated files.
  const std::uint32_t section_count = cursor.u32();
  if (section_count != kSectionCount) {
    cursor.fail("unexpected section count " + std::to_string(section_count));
  }
  if (cursor.u32() != 0) {
    cursor.fail("nonzero reserved header field");
  }
  std::size_t section_sizes[kSectionCount] = {};
  std::size_t total = kHeaderBytesV4;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const std::uint32_t id = cursor.u32();
    if (id != s + 1) {
      cursor.fail("unexpected section id " + std::to_string(id));
    }
    if (cursor.u32() != 0) {
      cursor.fail("nonzero reserved table field");
    }
    const std::uint64_t size = cursor.u64();
    if (size > body_size) {
      cursor.fail("implausible section size " + std::to_string(size));
    }
    if (size % 8 != 0) {
      cursor.fail("misaligned section size " + std::to_string(size));
    }
    section_sizes[s] = static_cast<std::size_t>(size);
    total += section_sizes[s];
    out.sections[s] = {id, static_cast<std::uint64_t>(kMagicBytes + total - size),
                       size};
  }
  // Trailing bytes beyond the declared sections are a structural error. A
  // *shorter* body (truncated file) is not failed here: parsing continues so
  // the eventual end-of-stream error points at the exact byte and — when the
  // cut lands inside the event arrays — the exact record.
  if (total < body_size) {
    cursor.fail("section sizes do not cover the body (" + std::to_string(total) +
                " vs " + std::to_string(body_size) + ")");
  }

  // Attributes. Keys must be unique: the owned Trace's attribute map would
  // silently fold duplicates, and the mapped view has no map to fold with —
  // rejecting here keeps both paths identical.
  std::size_t section_end = cursor.pos() + section_sizes[0];
  const std::uint32_t attr_count = cursor.u32();
  if (attr_count > (1u << 20)) {
    cursor.fail("implausible attribute count " + std::to_string(attr_count));
  }
  out.attributes.reserve(attr_count);
  {
    std::unordered_set<std::string_view> seen;
    for (std::uint32_t i = 0; i < attr_count; ++i) {
      const std::string_view key = cursor.string();
      const std::string_view value = cursor.string();
      if (!seen.insert(key).second) {
        cursor.fail("duplicate attribute key '" + std::string(key) + "'");
      }
      out.attributes.emplace_back(key, value);
    }
  }
  if (cursor.pos() > section_end ||
      pad8(cursor.pos() + section_sizes[0] - section_end) != section_sizes[0]) {
    cursor.fail("attribute section size mismatch");
  }
  cursor.skip_padding(section_end);

  // Metric definitions. Name checks (non-empty, unique) mirror what
  // Trace::define_metric enforces on the buffered path.
  section_end = cursor.pos() + section_sizes[1];
  const std::uint32_t metric_count = cursor.u32();
  if (metric_count > (1u << 20)) {
    cursor.fail("implausible metric count " + std::to_string(metric_count));
  }
  out.metrics.reserve(metric_count);
  {
    std::unordered_set<std::string_view> seen;
    for (std::uint32_t i = 0; i < metric_count; ++i) {
      MetricView metric;
      metric.name = cursor.string();
      metric.unit = cursor.string();
      const std::uint8_t mode = cursor.u8();
      if (mode > static_cast<std::uint8_t>(MetricMode::CounterIncrement)) {
        cursor.fail("invalid metric mode " + std::to_string(mode));
      }
      metric.mode = static_cast<MetricMode>(mode);
      if (metric.name.empty()) {
        cursor.fail("empty metric name");
      }
      if (!seen.insert(metric.name).second) {
        cursor.fail("duplicate metric '" + std::string(metric.name) + "'");
      }
      out.metrics.push_back(metric);
    }
  }
  if (cursor.pos() > section_end ||
      pad8(cursor.pos() + section_sizes[1] - section_end) != section_sizes[1]) {
    cursor.fail("metric section size mismatch");
  }
  cursor.skip_padding(section_end);

  // Region string table.
  section_end = cursor.pos() + section_sizes[2];
  const std::uint32_t region_count = cursor.u32();
  if (region_count > (1u << 20)) {
    cursor.fail("implausible region count " + std::to_string(region_count));
  }
  out.regions.reserve(region_count);
  {
    std::unordered_set<std::string_view> seen;
    for (std::uint32_t i = 0; i < region_count; ++i) {
      const std::string_view region = cursor.string();
      if (!seen.insert(region).second) {
        cursor.fail("duplicate region name '" + std::string(region) + "'");
      }
      out.regions.push_back(region);
    }
  }
  if (cursor.pos() > section_end ||
      pad8(cursor.pos() + section_sizes[2] - section_end) != section_sizes[2]) {
    cursor.fail("region section size mismatch");
  }
  cursor.skip_padding(section_end);

  // Event section: u64 count, then the columns widest-first so each starts
  // 8-aligned: times (u64 x n), values (f64 x n), ids (u32 x n), kinds
  // (u8 x n), zero pad to 8.
  const std::size_t events_pos = cursor.pos();
  const std::uint64_t event_count = cursor.u64();
  if (event_count > (1ull << 32)) {
    cursor.fail("implausible event count " + std::to_string(event_count));
  }
  const auto n = static_cast<std::size_t>(event_count);
  if (section_sizes[3] != pad8(8 + n * kEventBytes)) {
    cursor.fail("event section size mismatch");
  }
  const std::size_t times_pos = events_pos + 8;
  const std::size_t values_pos = times_pos + n * 8;
  const std::size_t ids_pos = values_pos + n * 8;
  const std::size_t kinds_pos = ids_pos + n * 4;
  section_end = events_pos + section_sizes[3];
  if (section_end > body_size) {
    // Truncated inside the arrays: report the first event with a missing
    // element — the column layout makes that computable from the cut alone.
    const std::size_t cut = body_size;
    std::int64_t record = -1;
    if (cut < values_pos) {
      record = static_cast<std::int64_t>((cut - times_pos) / 8);
    } else if (cut < ids_pos) {
      record = static_cast<std::int64_t>((cut - values_pos) / 8);
    } else if (cut < kinds_pos) {
      record = static_cast<std::int64_t>((cut - ids_pos) / 4);
    } else if (cut < kinds_pos + n) {
      record = static_cast<std::int64_t>(cut - kinds_pos);
    }
    cursor.fail("unexpected end of stream", record, body_size);
  }

  out.event_count = n;
  out.times = reinterpret_cast<const std::uint64_t*>(cursor.at(times_pos));
  out.values = reinterpret_cast<const double*>(cursor.at(values_pos));
  out.ids = reinterpret_cast<const std::uint32_t*>(cursor.at(ids_pos));
  out.kinds = reinterpret_cast<const std::uint8_t*>(cursor.at(kinds_pos));

  // Per-record validation in two phases: one branch-light accumulation pass
  // the compiler can vectorize (the overwhelmingly common all-valid case
  // costs a few simple ops per event), and only on failure a precise rescan
  // that reports the first bad record with the v3 readers' exact precedence
  // (chronology, then kind, then id) and per-column byte offsets.
  const auto region_count32 = static_cast<std::uint32_t>(region_count);
  const auto metric_count32 = static_cast<std::uint32_t>(metric_count);
  bool all_valid = true;
  for (std::size_t i = 1; i < n; ++i) {
    all_valid &= out.times[i] >= out.times[i - 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t kind = out.kinds[i];
    const bool is_metric = kind == 3;
    const std::uint32_t limit = is_metric ? metric_count32 : region_count32;
    all_valid &= static_cast<bool>((kind >= 1) & (kind <= 3));
    all_valid &= out.ids[i] < limit;
  }
  if (!all_valid) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto record = static_cast<std::int64_t>(i);
      if (i > 0 && out.times[i] < out.times[i - 1]) {
        cursor.fail("events must be chronological", record, times_pos + i * 8);
      }
      const std::uint8_t kind = out.kinds[i];
      if (kind < 1 || kind > 3) {
        cursor.fail("unknown event kind " + std::to_string(kind), record,
                    kinds_pos + i);
      }
      if (kind == 3) {
        if (out.ids[i] >= metric_count32) {
          cursor.fail("metric id " + std::to_string(out.ids[i]) +
                          " out of range (have " + std::to_string(metric_count) + ")",
                      record, ids_pos + i * 4);
        }
      } else if (out.ids[i] >= region_count32) {
        cursor.fail("region id " + std::to_string(out.ids[i]) +
                        " out of range (have " + std::to_string(region_count) + ")",
                    record, ids_pos + i * 4);
      }
    }
  }

  // Event-section padding.
  {
    const char* pad = cursor.at(kinds_pos + n);
    for (std::size_t p = kinds_pos + n; p < section_end; ++p, ++pad) {
      if (*pad != 0) {
        cursor.fail("nonzero section padding", -1, p);
      }
    }
  }
  return out;
}

void verify_checksum_v4(const char* body, std::size_t body_size,
                        std::size_t event_count) {
  std::uint64_t stored = 0;
  std::memcpy(&stored, body + body_size, 8);
  if (stored != fnv1a_lanes(body, body_size)) {
    const std::int64_t record =
        event_count > 0 ? static_cast<std::int64_t>(event_count - 1) : -1;
    const std::size_t offset = body_size + kMagicBytes;
    throw IoError("trace: checksum mismatch (file corrupt) (byte " +
                      std::to_string(offset) + ", record " + std::to_string(record) +
                      ")",
                  static_cast<std::int64_t>(offset), record);
  }
}

}  // namespace pwx::trace::format
