#include "pmc/events.hpp"

#include <array>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pwx::pmc {

namespace {

// One entry per Preset, in enum order. `derived` presets combine two native
// events and therefore occupy two programmable slots; fixed-counter presets
// (TOT_CYC, TOT_INS, REF_CYC) occupy none, matching Haswell's three fixed
// architectural counters.
constexpr std::array<EventInfo, kPresetCount> kCatalogue = {{
    {Preset::L1_DCM, "L1_DCM", "Level 1 data cache misses", false, 1, true},
    {Preset::L1_ICM, "L1_ICM", "Level 1 instruction cache misses", false, 1, true},
    {Preset::L2_DCM, "L2_DCM", "Level 2 data cache misses", true, 2, true},
    {Preset::L2_ICM, "L2_ICM", "Level 2 instruction cache misses", false, 1, true},
    {Preset::L1_TCM, "L1_TCM", "Level 1 cache misses", true, 2, true},
    {Preset::L2_TCM, "L2_TCM", "Level 2 cache misses", false, 1, true},
    {Preset::L3_TCM, "L3_TCM", "Level 3 cache misses", false, 1, true},
    {Preset::L1_LDM, "L1_LDM", "Level 1 load misses", false, 1, true},
    {Preset::L1_STM, "L1_STM", "Level 1 store misses", false, 1, true},
    {Preset::L2_LDM, "L2_LDM", "Level 2 load misses", false, 1, true},
    {Preset::L2_STM, "L2_STM", "Level 2 store misses", false, 1, true},
    {Preset::L3_LDM, "L3_LDM", "Level 3 load misses", false, 1, true},
    {Preset::L2_DCA, "L2_DCA", "Level 2 data cache accesses", true, 2, true},
    {Preset::L2_DCR, "L2_DCR", "Level 2 data cache reads", false, 1, true},
    {Preset::L2_DCW, "L2_DCW", "Level 2 data cache writes", false, 1, true},
    {Preset::L3_DCA, "L3_DCA", "Level 3 data cache accesses", true, 2, true},
    {Preset::L3_DCR, "L3_DCR", "Level 3 data cache reads", false, 1, true},
    {Preset::L3_DCW, "L3_DCW", "Level 3 data cache writes", false, 1, true},
    {Preset::L2_ICA, "L2_ICA", "Level 2 instruction cache accesses", false, 1, true},
    {Preset::L2_ICR, "L2_ICR", "Level 2 instruction cache reads", false, 1, true},
    {Preset::L3_ICA, "L3_ICA", "Level 3 instruction cache accesses", false, 1, true},
    {Preset::L3_ICR, "L3_ICR", "Level 3 instruction cache reads", false, 1, true},
    {Preset::L2_TCA, "L2_TCA", "Level 2 total cache accesses", true, 2, true},
    {Preset::L2_TCR, "L2_TCR", "Level 2 total cache reads", true, 2, true},
    {Preset::L2_TCW, "L2_TCW", "Level 2 total cache writes", false, 1, true},
    {Preset::L3_TCA, "L3_TCA", "Level 3 total cache accesses", true, 2, true},
    {Preset::L3_TCR, "L3_TCR", "Level 3 total cache reads", true, 2, true},
    {Preset::L3_TCW, "L3_TCW", "Level 3 total cache writes", false, 1, true},
    {Preset::CA_SNP, "CA_SNP", "Requests for a snoop", false, 1, true},
    {Preset::CA_SHR, "CA_SHR", "Requests for exclusive access to shared cache line",
     false, 1, true},
    {Preset::CA_CLN, "CA_CLN", "Requests for exclusive access to clean cache line",
     false, 1, true},
    {Preset::CA_INV, "CA_INV", "Requests for cache line invalidation", false, 1, true},
    {Preset::CA_ITV, "CA_ITV", "Requests for cache line intervention", false, 1, false},
    {Preset::TLB_DM, "TLB_DM", "Data translation lookaside buffer misses", false, 1,
     true},
    {Preset::TLB_IM, "TLB_IM", "Instruction translation lookaside buffer misses", false,
     1, true},
    {Preset::PRF_DM, "PRF_DM", "Data prefetch cache misses", false, 1, true},
    {Preset::MEM_WCY, "MEM_WCY", "Cycles stalled waiting for memory writes", false, 1,
     true},
    {Preset::STL_ICY, "STL_ICY", "Cycles with no instruction issue", false, 1, true},
    {Preset::FUL_ICY, "FUL_ICY", "Cycles with maximum instruction issue", false, 1,
     true},
    {Preset::STL_CCY, "STL_CCY", "Cycles with no instructions completed", false, 1,
     true},
    {Preset::FUL_CCY, "FUL_CCY", "Cycles with maximum instructions completed", false, 1,
     true},
    {Preset::RES_STL, "RES_STL", "Cycles stalled on any resource", false, 1, true},
    {Preset::BR_UCN, "BR_UCN", "Unconditional branch instructions", false, 1, true},
    {Preset::BR_CN, "BR_CN", "Conditional branch instructions", false, 1, true},
    {Preset::BR_TKN, "BR_TKN", "Conditional branch instructions taken", false, 1, true},
    {Preset::BR_NTK, "BR_NTK", "Conditional branch instructions not taken", true, 2,
     true},
    {Preset::BR_MSP, "BR_MSP", "Conditional branch instructions mispredicted", false, 1,
     true},
    {Preset::BR_PRC, "BR_PRC", "Conditional branch instructions correctly predicted",
     true, 2, true},
    {Preset::BR_INS, "BR_INS", "Branch instructions", false, 1, true},
    {Preset::TOT_INS, "TOT_INS", "Instructions completed", false, 0, true},
    {Preset::LD_INS, "LD_INS", "Load instructions", false, 1, true},
    {Preset::SR_INS, "SR_INS", "Store instructions", false, 1, true},
    {Preset::LST_INS, "LST_INS", "Load/store instructions completed", true, 2, true},
    // FP presets are unreliable/unavailable on Haswell (the FP counter events
    // were removed from the architecture); excluded from the 54.
    {Preset::FP_INS, "FP_INS", "Floating point instructions", false, 1, false},
    {Preset::FDV_INS, "FDV_INS", "Floating point divide instructions", false, 1, false},
    {Preset::SP_OPS, "SP_OPS", "Single precision FP operations", true, 2, false},
    {Preset::DP_OPS, "DP_OPS", "Double precision FP operations", true, 2, false},
    {Preset::VEC_SP, "VEC_SP", "Single precision vector/SIMD instructions", false, 1,
     false},
    {Preset::VEC_DP, "VEC_DP", "Double precision vector/SIMD instructions", false, 1,
     false},
    {Preset::TOT_CYC, "TOT_CYC", "Total cycles", false, 0, true},
    {Preset::REF_CYC, "REF_CYC", "Reference clock cycles", false, 0, true},
    {Preset::STL_FPU, "STL_FPU", "Cycles the FP unit is stalled", false, 1, false},
}};

const std::unordered_map<std::string, Preset>& name_index() {
  static const std::unordered_map<std::string, Preset> index = [] {
    std::unordered_map<std::string, Preset> m;
    for (const EventInfo& info : kCatalogue) {
      m.emplace(std::string(info.name), info.preset);
    }
    return m;
  }();
  return index;
}

}  // namespace

const EventInfo& event_info(Preset p) {
  const auto idx = static_cast<std::size_t>(p);
  PWX_REQUIRE(idx < kPresetCount, "invalid preset id ", idx);
  return kCatalogue[idx];
}

std::span<const EventInfo> all_events() { return kCatalogue; }

std::vector<Preset> haswell_ep_available_events() {
  std::vector<Preset> out;
  out.reserve(kPresetCount);
  for (const EventInfo& info : kCatalogue) {
    if (info.available_on_haswell_ep) {
      out.push_back(info.preset);
    }
  }
  return out;
}

std::string_view preset_name(Preset p) { return event_info(p).name; }

std::optional<Preset> preset_from_name(std::string_view name) {
  std::string_view lookup = name;
  if (starts_with(lookup, "PAPI_")) {
    lookup.remove_prefix(5);
  }
  const auto& index = name_index();
  const auto it = index.find(std::string(lookup));
  if (it == index.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace pwx::pmc
