// pwx-ingestd — incremental trace-ingestion daemon.
//
// Watches a directory of OTF2-lite trace files and keeps a merged
// phase-profile table current as calibration runs land: each poll ingests
// only new or changed files (zero-copy mapped by default) and republishes
// the merged table, which is bit-identical to a cold batch over the same
// files (see trace/incremental.hpp).
//
// With --refresh the daemon additionally runs the self-healing serving loop
// (src/serve): it bootstraps a power model from the first ingested corpus,
// serves every republished row through an epoch-bound OnlineEstimator, feeds
// the (estimate, measured power) residuals to a DriftMonitor, and lets the
// Supervisor retrain + validate + hot-swap the model when drift persists.
// All lifecycle decisions land in the serve.* obs counters.
//
// Usage:
//   pwx-ingestd <directory> [options]
//
//   --once              one poll, print the table, exit (CI / cron mode)
//   --interval <s>      seconds between polls (default 1.0)
//   --polls <n>         stop after n polls (default: run until killed)
//   --no-mmap           ingest through the buffered reader instead
//   --no-verify         defer checksum verification on the mapped path
//   --quiet             suppress the per-republish profile table
//   --metrics           print the obs metric table on exit
//   --refresh           enable drift detection + guarded retrain + hot-swap
//   --refresh-window <n>   drift window size in samples (default 32)
//   --refresh-mape <pct>   per-window MAPE breach threshold (default 5)
//   --trace-out <file>  record a structured span trace of the whole run and
//                       write it as Chrome trace-event JSON (load the file
//                       in Perfetto / chrome://tracing) on exit
//   --trace-sample <n>  record 1-in-n traces while tracing (default 1)
//   --flight-recorder <file>  arm the black-box flight recorder; recent
//                       spans/logs/metric deltas are dumped to <file> on
//                       guarded-estimate degradation, refresh rejection,
//                       trace-IO corruption, SIGUSR1, or shutdown
//
// SIGINT/SIGTERM request a graceful shutdown: the in-flight poll finishes
// and republishes, the last partial drift window is closed, and a final
// TelemetrySink JSONL flush goes to stderr (plus a flight-recorder dump
// when armed) so no tail-of-run state is ever lost; the daemon exits 0.
// SIGUSR1 triggers an on-demand flight-recorder dump without stopping.
//
// Exit codes: 0 ok (including signal-requested shutdown), 1 generic error,
// 2 usage. Ingestion failures of individual files are not fatal: the daemon
// reports them on stderr, keeps the file quarantined until it changes, and
// publishes the rest.
//
// Telemetry: ingestd.files_ingested / files_failed / bytes_mapped /
// bytes_copied / republishes counters and the ingestd.republish_seconds
// latency histogram, plus the serve.* lifecycle counters in --refresh mode,
// all in the process-wide pwx::obs registry.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/epoch.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "serve/supervisor.hpp"
#include "trace/incremental.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwx;

/// Set by the SIGINT/SIGTERM handler; the poll loop finishes its in-flight
/// republish, flushes metrics, and exits 0.
volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

/// Set by SIGUSR1: the poll loop triggers an on-demand flight dump.
volatile std::sig_atomic_t g_dump = 0;

void handle_dump_signal(int) { g_dump = 1; }

void print_profiles(const std::vector<trace::PhaseProfile>& profiles) {
  TablePrinter table({"workload", "phase", "f [GHz]", "threads", "elapsed [s]",
                      "avg power [W]", "runs"});
  for (const trace::PhaseProfile& p : profiles) {
    table.row({p.workload, p.phase, format_double(p.frequency_ghz, 2),
               std::to_string(p.threads), format_double(p.elapsed_s, 3),
               format_double(p.avg_power_watts, 2), std::to_string(p.runs_merged)});
  }
  table.print(std::cout);
}

/// Interruptible sleep: returns early when a stop or dump signal arrives.
void sleep_interruptible(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (g_stop == 0 && g_dump == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

/// A profile row as the estimator sees it: counts reconstructed from the
/// per-second rates over the profiled interval.
core::CounterSample sample_from_row(const acquire::DataRow& row) {
  core::CounterSample sample;
  sample.elapsed_s = row.elapsed_s;
  sample.frequency_ghz = row.frequency_ghz;
  sample.voltage = row.avg_voltage;
  for (const auto& [preset, rate] : row.counter_rates) {
    sample.counts[preset] = rate * row.elapsed_s;
  }
  return sample;
}

/// The self-healing serving loop around one IncrementalCampaign: an
/// epoch-bound estimator replays every republished row, and the Supervisor
/// watches the residuals against the measured power.
class RefreshLoop {
public:
  RefreshLoop(serve::DriftConfig drift, acquire::IngestOptions ingest)
      : drift_(drift), ingest_(ingest) {}

  /// Feed one republish. Bootstraps the model from the first corpus that is
  /// big enough; afterwards serves every row and reports drift decisions.
  void on_republish(const trace::IncrementalCampaign& campaign) {
    if (supervisor_ == nullptr && !bootstrap(campaign)) {
      return;
    }
    // The retraining corpus follows the directory: a refresh always re-reads
    // whatever files are present right now.
    supervisor_->set_refresh_corpus(campaign.paths());

    // Rows are served in chunks through the SIMD batch path: one vector
    // predict per chunk, then the drift supervisor consumes the estimates in
    // row order exactly as before. A hot swap published mid-chunk is adopted
    // at the next chunk boundary instead of the next row — the estimates in
    // between come from the generation that was serving when the chunk was
    // built, the same window a swap racing per-row ingestion always had.
    constexpr std::size_t kChunkRows = 64;
    const std::vector<trace::PhaseProfile>& profiles = campaign.profiles();
    for (std::size_t begin = 0; begin < profiles.size(); begin += kChunkRows) {
      const std::size_t end = std::min(begin + kChunkRows, profiles.size());
      rows_.clear();
      samples_.clear();
      for (std::size_t k = begin; k < end; ++k) {
        rows_.push_back(
            acquire::row_from_profile(profiles[k], workloads::Suite::Roco2));
        samples_.push_back(sample_from_row(rows_.back()));
      }
      estimates_.resize(samples_.size());
      health_.resize(samples_.size());
      estimator_->estimate_batch_guarded(samples_, batch_scratch_, estimates_,
                                         health_);
      for (std::size_t k = 0; k < samples_.size(); ++k) {
        observe_row(rows_[k], estimates_[k], health_[k]);
      }
    }
  }

  bool active() const { return supervisor_ != nullptr; }
  std::uint64_t generation() const {
    return estimator_ != nullptr ? estimator_->generation() : 0;
  }

  /// Shutdown path: close the partially filled drift window so its stats
  /// reach the final telemetry flush instead of being lost.
  void close_window() {
    if (supervisor_ != nullptr) {
      supervisor_->close_window();
    }
  }

private:
  /// Feed one served row to the drift supervisor, printing any refresh
  /// decision it reaches — the per-row half of the old serial loop.
  void observe_row(const acquire::DataRow& row, double estimate,
                   core::HealthState health) {
    supervisor_->observe_health(health != core::HealthState::Ok, false);
    const auto report = supervisor_->observe(estimate, row.avg_power_watts);
    if (report) {
      std::fprintf(stderr,
                   "ingestd: drift refresh #%llu: %s (gen %llu -> %llu, "
                   "candidate MAPE %.2f%%, incumbent %.2f%%)\n",
                   static_cast<unsigned long long>(
                       supervisor_->refreshes_run()),
                   std::string(serve::refresh_status_name(report->status))
                       .c_str(),
                   static_cast<unsigned long long>(
                       report->incumbent_generation),
                   static_cast<unsigned long long>(
                       report->published_generation),
                   report->candidate_holdout_mape_pct,
                   report->incumbent_holdout_mape_pct);
    }
  }

  bool bootstrap(const trace::IncrementalCampaign& campaign) {
    std::vector<acquire::DataRow> rows;
    for (const trace::PhaseProfile& profile : campaign.profiles()) {
      rows.push_back(
          acquire::row_from_profile(profile, workloads::Suite::Roco2));
    }
    acquire::Dataset dataset(std::move(rows));
    acquire::sanitize_dataset(dataset);
    // The bootstrap fit needs enough rows for a stable Equation-1 fit; keep
    // polling until the corpus grows past the floor.
    if (dataset.size() < 16) {
      return false;
    }
    try {
      core::SelectionOptions selection;
      selection.count =
          std::min<std::size_t>(6, dataset.common_presets().size());
      const core::SelectionResult selected = core::select_events(
          dataset, dataset.common_presets(), selection);
      core::FeatureSpec spec;
      spec.events = selected.selected();
      core::PowerModel model = core::train_model(dataset, spec);

      auto epoch = std::make_shared<core::LayoutEpoch>(std::move(model));
      estimator_ = std::make_unique<core::OnlineEstimator>(epoch);
      serve::SupervisorConfig config;
      config.drift = drift_;
      config.refresh.trace_paths = campaign.paths();
      config.refresh.ingest = ingest_;
      config.refresh.event_count = selection.count;
      supervisor_ = std::make_unique<serve::Supervisor>(epoch, config);
      std::fprintf(stderr,
                   "ingestd: refresh loop armed: %zu rows, %zu events, "
                   "serving generation %llu\n",
                   dataset.size(), spec.events.size(),
                   static_cast<unsigned long long>(estimator_->generation()));
      return true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ingestd: refresh bootstrap failed: %s\n",
                   e.what());
      return false;
    }
  }

  serve::DriftConfig drift_;
  acquire::IngestOptions ingest_;
  std::unique_ptr<core::OnlineEstimator> estimator_;
  std::unique_ptr<serve::Supervisor> supervisor_;
  // Chunk scratch for the batched serving path (reused across republishes).
  core::SampleBatch batch_scratch_;
  std::vector<acquire::DataRow> rows_;
  std::vector<core::CounterSample> samples_;
  std::vector<double> estimates_;
  std::vector<core::HealthState> health_;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <directory> [--once] [--interval <s>] [--polls <n>]\n"
      "       [--no-mmap] [--no-verify] [--quiet] [--metrics]\n"
      "       [--refresh] [--refresh-window <n>] [--refresh-mape <pct>]\n"
      "       [--trace-out <file>] [--trace-sample <n>]\n"
      "       [--flight-recorder <file>]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* directory = nullptr;
  bool once = false;
  bool quiet = false;
  bool metrics = false;
  bool refresh = false;
  const char* trace_out = nullptr;
  std::uint64_t trace_sample = 1;
  const char* flight_path = nullptr;
  double interval_s = 1.0;
  std::uint64_t max_polls = 0;  // 0: unbounded
  trace::IncrementalCampaignOptions options;
  options.campaign.mmap = true;
  serve::DriftConfig drift;
  drift.window_size = 32;
  drift.max_mape_pct = 5.0;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--refresh") == 0) {
      refresh = true;
    } else if (std::strcmp(argv[i], "--no-mmap") == 0) {
      options.campaign.mmap = false;
    } else if (std::strcmp(argv[i], "--no-verify") == 0) {
      options.campaign.verify_checksum = false;
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--polls") == 0 && i + 1 < argc) {
      max_polls = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--refresh-window") == 0 && i + 1 < argc) {
      drift.window_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--refresh-mape") == 0 && i + 1 < argc) {
      drift.max_mape_pct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-sample") == 0 && i + 1 < argc) {
      trace_sample = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--flight-recorder") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (directory == nullptr && argv[i][0] != '-') {
      directory = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (directory == nullptr || interval_s < 0 || drift.window_size == 0 ||
      drift.max_mape_pct <= 0 || trace_sample == 0) {
    return usage(argv[0]);
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGUSR1, handle_dump_signal);

  obs::set_enabled(true);
  if (trace_out != nullptr) {
    obs::TracerConfig tracer_config;
    tracer_config.ring_capacity = 65536;
    tracer_config.sample_every = trace_sample;
    obs::tracer().start(tracer_config);
  }
  if (flight_path != nullptr) {
    obs::FlightConfig flight_config;
    flight_config.dump_path = flight_path;
    obs::flight().arm(flight_config);
  }
  try {
    trace::IncrementalCampaign campaign(directory, options);
    acquire::IngestOptions ingest;
    ingest.mmap = options.campaign.mmap;
    ingest.verify_checksum = options.campaign.verify_checksum;
    RefreshLoop refresh_loop(drift, ingest);

    // Serving-throughput gauge, derived from the batch-path counters: valid
    // lanes estimated since the previous poll over the wall time between
    // polls. Registered up front so it shows in --metrics even before the
    // refresh loop arms (value 0).
    obs::Gauge& estimates_per_s = obs::registry().gauge(
        "ingestd.estimates_per_s",
        "valid samples served through the batched estimator per second");
    obs::Counter& batch_samples = obs::registry().counter(
        "estimate.batch.samples", "samples estimated through the batched path");
    obs::Counter& batch_invalid = obs::registry().counter(
        "estimate.batch.lanes_invalid",
        "batched-path lanes rejected by sample validation");
    double rate_window_start_s = obs::monotonic_s();
    std::uint64_t rate_window_valid = 0;

    const std::uint64_t polls = once ? 1 : max_polls;
    for (std::uint64_t i = 0; polls == 0 || i < polls; ++i) {
      if (i > 0) {
        sleep_interruptible(interval_s);
      }
      if (g_dump != 0) {
        g_dump = 0;
        if (obs::flight().armed()) {
          obs::flight().trigger("sigusr1");
          std::fprintf(stderr, "ingestd: SIGUSR1 flight dump written\n");
        }
      }
      if (g_stop != 0) {
        std::fprintf(stderr, "ingestd: stop signal received, shutting down\n");
        break;
      }
      if (!campaign.poll()) {
        continue;
      }
      const auto& stats = campaign.stats();
      std::fprintf(stderr,
                   "ingestd: poll %llu: %zu files, %zu profiles, "
                   "%llu ingested, %llu failed, republish %.3f ms\n",
                   static_cast<unsigned long long>(stats.polls),
                   campaign.paths().size(), campaign.profiles().size(),
                   static_cast<unsigned long long>(stats.files_ingested),
                   static_cast<unsigned long long>(stats.files_failed),
                   static_cast<double>(stats.last_republish_ns) * 1e-6);
      for (const auto& [path, error] : campaign.errors()) {
        std::fprintf(stderr, "ingestd:   quarantined %s: %s\n", path.c_str(),
                     error.c_str());
      }
      if (refresh) {
        refresh_loop.on_republish(campaign);
      }
      {
        const double now_s = obs::monotonic_s();
        const std::uint64_t invalid = batch_invalid.value();
        const std::uint64_t total = batch_samples.value();
        const std::uint64_t valid = total > invalid ? total - invalid : 0;
        if (now_s > rate_window_start_s) {
          estimates_per_s.set((static_cast<double>(valid) -
                               static_cast<double>(rate_window_valid)) /
                              (now_s - rate_window_start_s));
        }
        rate_window_start_s = now_s;
        rate_window_valid = valid;
      }
      if (!quiet) {
        print_profiles(campaign.profiles());
      }
    }
    if (refresh && refresh_loop.active()) {
      std::fprintf(stderr, "ingestd: final serving generation %llu\n",
                   static_cast<unsigned long long>(refresh_loop.generation()));
    }
    // Shutdown flush: close the partial drift window first so its stats are
    // visible in the final JSONL snapshot, then emit that snapshot to stderr.
    // This runs on every exit path (signal or poll budget) so the tail of the
    // run is never lost.
    refresh_loop.close_window();
    {
      obs::TelemetrySinkConfig sink_config;
      sink_config.format = obs::ExportFormat::Jsonl;
      obs::TelemetrySink sink(std::cerr, sink_config);
      sink.flush(obs::monotonic_s());
    }
    if (obs::flight().armed()) {
      obs::flight().trigger("shutdown");
    }
    if (trace_out != nullptr) {
      const std::vector<obs::SpanRecord> spans = obs::tracer().drain();
      const obs::TracerStats tstats = obs::tracer().stats();
      obs::tracer().stop();
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "ingestd: failed to open trace file %s\n",
                     trace_out);
        return 1;
      }
      out << obs::chrome_trace_json(spans).dump(2) << '\n';
      out.close();
      std::fprintf(stderr,
                   "ingestd: trace written to %s (%zu spans, %llu dropped)\n",
                   trace_out, spans.size(),
                   static_cast<unsigned long long>(tstats.spans_dropped));
    }
    if (metrics) {
      obs::print_table(obs::registry().snapshot(), std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
