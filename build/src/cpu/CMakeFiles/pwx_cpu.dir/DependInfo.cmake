
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/dvfs.cpp" "src/cpu/CMakeFiles/pwx_cpu.dir/dvfs.cpp.o" "gcc" "src/cpu/CMakeFiles/pwx_cpu.dir/dvfs.cpp.o.d"
  "/root/repo/src/cpu/thermal.cpp" "src/cpu/CMakeFiles/pwx_cpu.dir/thermal.cpp.o" "gcc" "src/cpu/CMakeFiles/pwx_cpu.dir/thermal.cpp.o.d"
  "/root/repo/src/cpu/topology.cpp" "src/cpu/CMakeFiles/pwx_cpu.dir/topology.cpp.o" "gcc" "src/cpu/CMakeFiles/pwx_cpu.dir/topology.cpp.o.d"
  "/root/repo/src/cpu/voltage.cpp" "src/cpu/CMakeFiles/pwx_cpu.dir/voltage.cpp.o" "gcc" "src/cpu/CMakeFiles/pwx_cpu.dir/voltage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pwx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
