#include "core/dense.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/estimator.hpp"

namespace pwx::core {

ModelLayout::ModelLayout(const PowerModel& model) {
  const FeatureSpec& spec = model.spec();
  const regress::OlsResult& fit = model.fit();
  PWX_REQUIRE(spec.events.size() <= std::numeric_limits<std::int16_t>::max(),
              "model has too many events for a dense layout");
  const std::size_t expected =
      spec.column_count() + (fit.has_intercept ? 1 : 0);
  PWX_REQUIRE(fit.beta.size() == expected, "model fit has ", fit.beta.size(),
              " coefficients, spec expects ", expected);

  events_ = spec.events;
  per_cycle_ = spec.normalization == RateNormalization::PerCycle;
  slot_table_.fill(-1);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    slot_table_[static_cast<std::size_t>(events_[i])] =
        static_cast<std::int16_t>(i);
  }

  // Flatten the coefficient vector: [δ?][α_n ...][β?][γ?].
  std::size_t c = fit.has_intercept ? 1 : 0;
  intercept_ = fit.has_intercept ? fit.beta[0] : 0.0;
  coef_.resize(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    coef_[i] = fit.beta[c++];
  }
  has_dyn_ = spec.include_dynamic_base;
  if (has_dyn_) {
    dyn_coef_ = fit.beta[c++];
  }
  has_static_ = spec.include_static_v;
  if (has_static_) {
    static_coef_ = fit.beta[c++];
  }
}

DenseSample ModelLayout::make_sample() const {
  DenseSample s;
  s.counts.resize(slots(), 0.0);
  return s;
}

void ModelLayout::to_dense(const CounterSample& sample, DenseSample& out) const {
  out.elapsed_s = sample.elapsed_s;
  out.frequency_ghz = sample.frequency_ghz;
  out.voltage = sample.voltage;
  out.counts.resize(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto it = sample.counts.find(events_[i]);
    PWX_REQUIRE(it != sample.counts.end(), "sample lacks event ",
                std::string(pmc::preset_name(events_[i])));
    out.counts[i] = it->second;
  }
}

DenseSample ModelLayout::to_dense(const CounterSample& sample) const {
  DenseSample out;
  to_dense(sample, out);
  return out;
}

void ModelLayout::to_dense_guarded(const CounterSample& sample,
                                   DenseSample& out) const {
  out.elapsed_s = sample.elapsed_s;
  out.frequency_ghz = sample.frequency_ghz;
  out.voltage = sample.voltage;
  out.counts.resize(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto it = sample.counts.find(events_[i]);
    out.counts[i] = it == sample.counts.end()
                        ? std::numeric_limits<double>::quiet_NaN()
                        : it->second;
  }
}

double ModelLayout::predict(const DenseSample& sample) const {
  PWX_REQUIRE(sample.counts.size() == events_.size(), "dense sample has ",
              sample.counts.size(), " counts, layout has ", events_.size(),
              " slots");
  // Operation-for-operation replay of build_features_row + OlsResult::predict
  // (rate, per-cycle normalization, x = rate·V²f, accumulate in column
  // order) so the result is bit-identical to the map-based path.
  const double v = sample.voltage;
  const double f = sample.frequency_ghz;
  const double v2f = v * v * f;
  double acc = intercept_;
  for (std::size_t i = 0; i < coef_.size(); ++i) {
    const double rate = sample.counts[i] / sample.elapsed_s;
    const double per = per_cycle_ ? rate / (f * 1e9) : rate / 1e9;
    acc += coef_[i] * (per * v2f);
  }
  if (has_dyn_) {
    acc += dyn_coef_ * v2f;
  }
  if (has_static_) {
    acc += static_coef_ * v;
  }
  return acc;
}

std::optional<double> ModelLayout::try_predict(const DenseSample& sample) const {
  const auto finite_positive = [](double x) { return std::isfinite(x) && x > 0.0; };
  if (!finite_positive(sample.elapsed_s) ||
      !finite_positive(sample.frequency_ghz) ||
      !finite_positive(sample.voltage) ||
      sample.counts.size() != events_.size()) {
    return std::nullopt;
  }
  for (const double c : sample.counts) {
    if (!std::isfinite(c) || c < 0.0) {
      return std::nullopt;
    }
  }
  const double raw = predict(sample);
  if (!std::isfinite(raw)) {
    return std::nullopt;
  }
  return raw;
}

}  // namespace pwx::core
