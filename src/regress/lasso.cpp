#include "regress/lasso.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/standardize.hpp"

namespace pwx::regress {

namespace {

double soft_threshold(double z, double gamma) {
  if (z > gamma) {
    return z - gamma;
  }
  if (z < -gamma) {
    return z + gamma;
  }
  return 0.0;
}

struct Prepared {
  stats::ColumnScaler scaler;
  la::Matrix z;
  std::vector<double> yc;
  double y_mean = 0.0;
  std::vector<double> col_sq_norm;  // Σ_i z_ij² (≈ n-1 after standardization)
};

Prepared prepare(const la::Matrix& x, std::span<const double> y) {
  PWX_REQUIRE(x.rows() == y.size(), "lasso: X has ", x.rows(), " rows but y has ",
              y.size());
  PWX_REQUIRE(x.rows() >= 3 && x.cols() >= 1, "lasso needs n >= 3, k >= 1");
  Prepared p;
  p.scaler = stats::ColumnScaler::fit(x);
  p.z = p.scaler.transform(x);
  p.y_mean = stats::mean(y);
  p.yc.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    p.yc[i] = y[i] - p.y_mean;
  }
  p.col_sq_norm.assign(x.cols(), 0.0);
  for (std::size_t i = 0; i < p.z.rows(); ++i) {
    for (std::size_t j = 0; j < p.z.cols(); ++j) {
      p.col_sq_norm[j] += p.z(i, j) * p.z(i, j);
    }
  }
  return p;
}

LassoResult descend(const Prepared& p, const la::Matrix& x, std::span<const double> y,
                    double lambda, double tol, std::size_t max_sweeps,
                    std::vector<double>& warm) {
  const std::size_t n = p.z.rows();
  const std::size_t k = p.z.cols();
  const double nf = static_cast<double>(n);

  std::vector<double>& b = warm;  // standardized coefficients, updated in place
  // Residual for the current coefficients.
  std::vector<double> r = p.yc;
  for (std::size_t j = 0; j < k; ++j) {
    if (b[j] == 0.0) {
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      r[i] -= b[j] * p.z(i, j);
    }
  }

  std::size_t sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      // Partial residual correlation: z_jᵀ r + ||z_j||² b_j.
      double rho = p.col_sq_norm[j] * b[j];
      for (std::size_t i = 0; i < n; ++i) {
        rho += p.z(i, j) * r[i];
      }
      const double b_new =
          p.col_sq_norm[j] > 0.0
              ? soft_threshold(rho / nf, lambda) / (p.col_sq_norm[j] / nf)
              : 0.0;
      const double delta = b_new - b[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          r[i] -= delta * p.z(i, j);
        }
        b[j] = b_new;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < tol) {
      ++sweep;
      break;
    }
  }

  LassoResult out;
  out.lambda = lambda;
  out.iterations = sweep;
  const auto [beta, shift] = p.scaler.unscale_coefficients(b);
  out.beta.resize(k + 1);
  out.beta[0] = p.y_mean + shift;
  for (std::size_t j = 0; j < k; ++j) {
    out.beta[j + 1] = beta[j];
    out.nonzero += (b[j] != 0.0);
  }
  const std::vector<double> fitted = out.predict(x);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (y[i] - fitted[i]) * (y[i] - fitted[i]);
    ss_tot += p.yc[i] * p.yc[i];
  }
  out.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return out;
}

}  // namespace

std::vector<double> LassoResult::predict(const la::Matrix& x) const {
  PWX_REQUIRE(x.cols() + 1 == beta.size(), "lasso predict: expected ",
              beta.size() - 1, " columns, got ", x.cols());
  std::vector<double> out(x.rows(), beta[0]);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      out[i] += beta[j + 1] * x(i, j);
    }
  }
  return out;
}

std::vector<std::size_t> LassoResult::active_set() const {
  std::vector<std::size_t> active;
  for (std::size_t j = 1; j < beta.size(); ++j) {
    if (beta[j] != 0.0) {
      active.push_back(j - 1);
    }
  }
  return active;
}

double lasso_lambda_max(const la::Matrix& x, std::span<const double> y) {
  const Prepared p = prepare(x, y);
  double lambda_max = 0.0;
  for (std::size_t j = 0; j < p.z.cols(); ++j) {
    double rho = 0.0;
    for (std::size_t i = 0; i < p.z.rows(); ++i) {
      rho += p.z(i, j) * p.yc[i];
    }
    lambda_max = std::max(lambda_max, std::fabs(rho) / static_cast<double>(p.z.rows()));
  }
  return lambda_max;
}

LassoResult fit_lasso(const la::Matrix& x, std::span<const double> y, double lambda,
                      double tol, std::size_t max_sweeps) {
  PWX_REQUIRE(lambda >= 0.0, "lasso penalty must be non-negative");
  const Prepared p = prepare(x, y);
  std::vector<double> warm(x.cols(), 0.0);
  return descend(p, x, y, lambda, tol, max_sweeps, warm);
}

std::vector<LassoResult> lasso_path(const la::Matrix& x, std::span<const double> y,
                                    std::size_t count, double ratio) {
  PWX_REQUIRE(count >= 2 && ratio > 0.0 && ratio < 1.0, "bad lasso path parameters");
  const Prepared p = prepare(x, y);
  const double lambda_max = lasso_lambda_max(x, y);
  std::vector<LassoResult> path;
  path.reserve(count);
  std::vector<double> warm(x.cols(), 0.0);
  for (std::size_t s = 0; s < count; ++s) {
    const double t = static_cast<double>(s) / static_cast<double>(count - 1);
    const double lambda = lambda_max * std::pow(ratio, t);
    path.push_back(descend(p, x, y, lambda, 1e-8, 10000, warm));
  }
  return path;
}

}  // namespace pwx::regress
