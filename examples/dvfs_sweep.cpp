// DVFS extrapolation study.
//
// The paper trains across five frequencies; this example asks a harder
// question a practitioner cares about: if you can only afford to measure at
// a *subset* of the DVFS states, how well does Equation 1 extrapolate to the
// rest? Trains on {1.2, 2.6} GHz (the extremes) and on {2.0} GHz (one middle
// point) and reports the per-state MAPE on all five paper frequencies.
//
// Build & run:  ./build/examples/dvfs_sweep
#include <cstdio>
#include <iostream>
#include <vector>

#include "acquire/campaign.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "cpu/dvfs.hpp"
#include "stats/metrics.hpp"

int main() {
  using namespace pwx;
  std::puts("acquiring standard training campaign (5 DVFS states) ...");
  const acquire::Dataset& all = acquire::standard_training_dataset();

  core::SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  core::FeatureSpec spec;
  spec.events = core::select_events(acquire::standard_selection_dataset(),
                                    pmc::haswell_ep_available_events(), opt)
                    .selected();

  struct Split {
    const char* name;
    std::vector<double> train_frequencies;
  };
  const std::vector<Split> splits = {
      {"all five states (reference)", {1.2, 1.6, 2.0, 2.4, 2.6}},
      {"extremes only {1.2, 2.6}", {1.2, 2.6}},
      {"single state {2.0}", {2.0}},
  };

  for (const Split& split : splits) {
    acquire::Dataset train;
    for (double f : split.train_frequencies) {
      for (const acquire::DataRow& row : all.filter_frequency(f).rows()) {
        train.append(row);
      }
    }
    const core::PowerModel model = core::train_model(train, spec);

    std::printf("\ntrained on %s (%zu rows):\n", split.name, train.size());
    TablePrinter table({"f [GHz]", "V [V]", "rows", "MAPE [%]"});
    for (double f : cpu::paper_frequencies_ghz()) {
      const acquire::Dataset at_f = all.filter_frequency(f);
      const auto pred = model.predict(at_f);
      table.row({format_double(f, 1),
                 format_double(at_f.rows().front().avg_voltage, 3),
                 std::to_string(at_f.size()),
                 format_double(stats::mape(at_f.power(), pred), 2)});
    }
    table.print(std::cout);
  }
  return 0;
}
