file(REMOVE_RECURSE
  "CMakeFiles/repro_fig5.dir/repro_fig5.cpp.o"
  "CMakeFiles/repro_fig5.dir/repro_fig5.cpp.o.d"
  "repro_fig5"
  "repro_fig5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
