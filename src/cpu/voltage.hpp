// Runtime core-voltage readout (scorep_x86_adapt / MSR PERF_STATUS analogue).
//
// Intel reports the core voltage in IA32_PERF_STATUS[47:32] in units of
// 2^-13 V. The sensor model reproduces that quantization plus a small
// per-part VID offset and load-line droop (voltage sags slightly under
// current load) — the same effects a real MSR readout shows.
#pragma once

#include <cstdint>

#include "cpu/dvfs.hpp"

namespace pwx::cpu {

/// Models the per-core voltage a tool like x86_adapt would read.
class VoltageSensor {
public:
  /// `part_offset_volts` models manufacturing VID variation for this part;
  /// `loadline_ohms` models droop proportional to core current estimate.
  VoltageSensor(const DvfsTable& table, double part_offset_volts = 0.0,
                double loadline_volts_per_watt = 2.5e-4);

  /// Voltage as the MSR would report it for a core running at
  /// `frequency_ghz` while its socket dissipates `socket_power_watts`
  /// (droop input). Quantized to 2^-13 V steps.
  double read(double frequency_ghz, double socket_power_watts) const;

  /// The true (unquantized) voltage, used by the ground-truth generator.
  double true_voltage(double frequency_ghz, double socket_power_watts) const;

  /// Quantize a voltage to the MSR's 2^-13 V resolution.
  static double quantize(double volts);

private:
  const DvfsTable* table_;
  double part_offset_;
  double loadline_;
};

}  // namespace pwx::cpu
