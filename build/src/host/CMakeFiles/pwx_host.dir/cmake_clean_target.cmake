file(REMOVE_RECURSE
  "libpwx_host.a"
)
