// R²-only and coefficients-only OLS fast paths.
//
// Greedy forward selection (Algorithm 1) and cross-validation fit hundreds of
// models per call but only ever consume R²/Adj.R² (selection) or
// coefficients + predictions (CV folds). fit_ols computes the thin Q factor,
// (XᵀX)⁻¹, leverage, and a covariance matrix for every fit — all dead weight
// on those paths. This module provides:
//
//   * fit_r2       — one QR + one Qᵀy; RSS read off the tail of Qᵀy.
//   * fit_ols_fast — coefficients, fitted values, R²; skips leverage,
//                    covariance, and inference entirely.
//   * StepwiseOls  — the engine behind greedy selection: a committed prefix
//                    factor extended one column at a time, with per-candidate
//                    trial fits that replicate fit_ols bit for bit at O(mk)
//                    instead of a from-scratch O(mk²) refit.
//
// Rank handling is deliberate: the selection path asks `full_rank` flags (no
// exceptions as control flow), while fit_ols_fast mirrors fit_ols and throws
// pwx::NumericalError so existing callers keep their failure semantics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "la/qr.hpp"

namespace pwx::regress {

/// Safety margin for gating on StepwiseOls::score_fast: a candidate whose
/// fast score trails the running best exact R² by more than this provably
/// cannot beat it, so the exact (bit-identical) refit may be skipped. The
/// fast-vs-exact deviation on this codebase's designs measures below 1e-12
/// (both paths are backward-stable QR solves of the same projected problem);
/// 1e-8 leaves four orders of magnitude of margin, and a too-large gate only
/// costs extra exact refits, never a different selection.
inline constexpr double kFastScoreGate = 1e-8;

/// R²-only view of an OLS fit (intercept always included).
struct R2Fit {
  double r_squared = 0.0;
  double adj_r_squared = 0.0;
  double ss_res = 0.0;            ///< residual sum of squares
  std::size_t n_parameters = 0;   ///< design columns incl. intercept
  bool full_rank = false;         ///< false => the other fields are meaningless
};

/// One-shot R²-only fit of y ~ [1 | x]. Never throws on collinearity — the
/// rank verdict comes from the QR diagonal and is returned in `full_rank`.
R2Fit fit_r2(const la::Matrix& x, std::span<const double> y);

/// Coefficients + fit quality without the covariance/leverage machinery.
struct FastOls {
  std::vector<double> beta;  ///< intercept first when added
  double r_squared = 0.0;
  double adj_r_squared = 0.0;
  double ss_res = 0.0;
  std::size_t n_observations = 0;
  std::size_t n_parameters = 0;  ///< columns incl. intercept
  bool has_intercept = false;

  /// Predict for a design with the same column layout as the fit input
  /// (identical arithmetic to OlsResult::predict).
  std::vector<double> predict(const la::Matrix& x) const;
};

/// Fit y ~ X (plus intercept when requested), computing only beta and R².
/// beta, R², and Adj.R² are bit-identical to fit_ols on the same input.
/// Requires n > k and full column rank; throws pwx::NumericalError otherwise.
FastOls fit_ols_fast(const la::Matrix& x, std::span<const double> y,
                     bool add_intercept = true);

/// Stepwise refitter for greedy forward selection over designs of the form
///
///   [ 1 | committed event columns… | candidate | trailing columns ]
///
/// (Equation 1: trailing = [V²f, V], the candidate is one event's rate·V²f).
/// The factor of the committed prefix [1 | committed…] is kept and extended by
/// column appends; a trial fit copies it and appends candidate + trailing, so
/// scoring one candidate costs O(m·k) rather than a from-scratch O(m·k²)
/// factorization. Every trial reproduces fit_ols on the same design *bit for
/// bit* — same column order, same Householder arithmetic, same residual-based
/// R² — so switching a caller from per-trial fit_ols to StepwiseOls can never
/// change which candidate wins a scan, even between near-tied candidates
/// whose R² differ only in the last few ulps.
class StepwiseOls {
public:
  /// Reusable per-thread buffers for score(): a scan loop keeps one Scratch
  /// per thread so trial fits never allocate.
  struct Scratch {
    la::QrExtension ext;
    std::vector<double> qty;
    std::vector<double> fast;  ///< score_fast working set (tails + rhs)
  };

  /// `trailing`: the m x t fixed right-most design columns; may be empty
  /// (t = 0). An intercept column is always implied on the left.
  StepwiseOls(const la::Matrix& trailing, std::span<const double> y);

  std::size_t rows() const { return y_.size(); }
  /// Number of committed (pushed) columns, excluding intercept and trailing.
  std::size_t committed() const { return n_committed_; }
  /// Parameter count of the committed design [1 | committed | trailing].
  std::size_t params() const { return 1 + n_committed_ + trailing_cols_; }

  /// fit_ols of y ~ [1 | committed | trailing] (minus the dead weight).
  R2Fit current() const;

  /// fit_ols of y ~ [1 | committed | candidate | trailing]. Const and
  /// thread-safe: a candidate scan may score concurrently from many threads,
  /// each with its own Scratch. Collinear candidates come back with
  /// full_rank == false (no exception).
  R2Fit score(std::span<const double> candidate, Scratch& scratch) const;
  R2Fit score(std::span<const double> candidate) const;

  /// Register the scan's candidate pool: `count` contiguous column-major
  /// columns of rows() entries each (`columns` must outlive the refitter).
  /// The refitter keeps each candidate pre-transformed through the committed
  /// prefix reflectors and updates the cache incrementally on push — one new
  /// reflector per commit, O(m) per candidate instead of the O(m·k) re-
  /// transform a plain score() pays per trial.
  void register_candidates(std::span<const double> columns, std::size_t count);

  /// score() for registered candidate `index`, using its cached transform.
  /// Bit-identical to score(column of index) — the cached column carries the
  /// same reflectors applied in the same order.
  R2Fit score_registered(std::size_t index, Scratch& scratch) const;

  /// Approximate R² of registered candidate `index`, for gating only: a
  /// plain-sqrt Householder least-squares on the prefix-projected tails (no
  /// bit-matching, no fitted-values pass), several times cheaper than
  /// score_registered. The value tracks the exact R² to a few 1e-13 on
  /// well-posed trials (backward-stable QR; see kFastScoreGate); degenerate
  /// trials return +infinity so a gate can never skip them. Deterministic:
  /// depends only on the candidate and the committed state, never on
  /// threading or evaluation order.
  double score_fast(std::size_t index, Scratch& scratch) const;

  /// Commit `column` into the prefix. Returns false — leaving the factor
  /// unchanged — when the column is collinear with the committed prefix.
  bool push(std::span<const double> column);

private:
  R2Fit fit_design(const double* candidate, const double* candidate_qt,
                   Scratch& scratch) const;
  void refresh_caches();
  std::span<const double> committed_column(std::size_t j) const {
    return {committed_.data() + j * rows(), rows()};
  }
  std::span<const double> trailing_column(std::size_t t) const {
    return {trailing_.data() + t * rows(), rows()};
  }
  std::span<const double> transformed_trailing(std::size_t t) const {
    return {trailing_qt_.data() + t * rows(), rows()};
  }

  la::QrDecomposition prefix_;       ///< QR([1 | committed…])
  std::size_t n_committed_ = 0;
  std::size_t trailing_cols_ = 0;
  std::vector<double> committed_;    ///< column-major committed columns
  std::vector<double> trailing_;     ///< column-major trailing columns
  std::vector<double> trailing_qt_;  ///< trailing run through prefix reflectors
  std::vector<double> y_;
  std::vector<double> base_qty_;     ///< prefix Qᵀy, shared by every trial
  double ss_tot_ = 0.0;              ///< centered total sum of squares
  const double* cand_raw_ = nullptr; ///< registered candidate columns (borrowed)
  std::size_t n_cands_ = 0;
  std::vector<double> cand_qt_;      ///< candidates through prefix reflectors
};

}  // namespace pwx::regress
