// Table III — Pearson correlation coefficient of selected performance
// counters with power.
//
// Paper: the first selected counter correlates strongly with power (PRF_DM,
// 0.85) while the remaining selected counters correlate only moderately or
// not at all (BR_MSP: -0.01) — greedy selection prefers counters that add
// *unique* information over counters that echo power.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/pcc.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header(
      "Table III: PCC of the selected counters with power",
      "PRF_DM 0.85, TOT_CYC 0.59, TLB_IM 0.33, FUL_CCY 0.57, STL_ICY 0.38, "
      "BR_MSP -0.01 — only the first counter is strongly correlated");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  const auto correlations = core::correlate_with_power(*p.selection, p.spec.events);

  std::puts("paper reference (Table III):");
  TablePrinter ref({"Counter", "PCC"});
  ref.row({"PRF_DM", "0.85"});
  ref.row({"TOT_CYC", "0.59"});
  ref.row({"TLB_IM", "0.33"});
  ref.row({"FUL_CCY", "0.57"});
  ref.row({"STL_ICY", "0.38"});
  ref.row({"BR_MSP", "-0.01"});
  ref.print(std::cout);

  std::puts("\nthis reproduction (our selected six, in selection order):");
  TablePrinter ours({"Counter", "PCC"});
  for (const core::CounterCorrelation& c : correlations) {
    ours.row({std::string(pmc::preset_name(c.preset)), format_double(c.pcc, 2)});
  }
  ours.print(std::cout);

  double first = std::fabs(correlations.front().pcc);
  double rest_max = 0.0;
  for (std::size_t i = 1; i < correlations.size(); ++i) {
    rest_max = std::max(rest_max, std::fabs(correlations[i].pcc));
  }
  std::printf("\nshape check: |PCC| of the first selected counter (%.2f) exceeds\n"
              "every later one (max %.2f) — later counters add information that\n"
              "raw correlation with power does not capture.\n",
              first, rest_max);
  return 0;
}
