#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "common/rng.hpp"
#include "obs/span.hpp"

namespace pwx::obs {

namespace detail {
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {

/// Single-producer (owning thread) / single-consumer (drain under the
/// registry mutex) bounded ring. Capacity is a power of two; a full ring
/// drops the incoming span and counts it.
struct Lane {
  Lane(std::size_t capacity_pow2, std::uint32_t thread_index)
      : slots(capacity_pow2), mask(capacity_pow2 - 1), thread(thread_index) {}

  std::vector<SpanRecord> slots;
  std::size_t mask;
  std::uint32_t thread;
  std::atomic<std::size_t> head{0};  ///< producer: next write index
  std::atomic<std::size_t> tail{0};  ///< consumer: next read index

  bool try_push(SpanRecord&& record) {
    const std::size_t h = head.load(std::memory_order_relaxed);
    const std::size_t t = tail.load(std::memory_order_acquire);
    if (h - t > mask) {
      return false;  // full: drop the newest, keep history contiguous
    }
    slots[h & mask] = std::move(record);
    head.store(h + 1, std::memory_order_release);
    return true;
  }
};

/// One in-flight span on the owning thread's stack.
struct Frame {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  bool sampled = false;
  double start_s = 0.0;
  std::string name;
  std::vector<SpanAttr> attrs;
};

struct ThreadState {
  std::uint64_t session = 0;  ///< session the cached lane belongs to
  std::shared_ptr<Lane> lane;
  std::vector<Frame> stack;
};

thread_local ThreadState t_state;  // NOLINT: intentional thread-local state

/// Shared tracer state. The mutex guards lane registration, drain, and
/// session transitions; everything producers touch per-span is atomic.
struct TracerCore {
  std::mutex mutex;
  std::vector<std::shared_ptr<Lane>> lanes;
  std::atomic<std::uint64_t> session{0};
  std::atomic<bool> session_active{false};
  std::atomic<void (*)(const SpanRecord&)> flight_tap{nullptr};

  // Session parameters, written under the mutex at start(); producers read
  // them racily but a session change bumps `session` first, so a stale read
  // only affects spans already straddling the transition.
  std::size_t ring_capacity = 2048;
  std::uint64_t id_seed = 0;
  std::uint64_t sample_every = 1;
  std::function<double()> clock;

  std::atomic<std::uint64_t> id_counter{0};
  std::atomic<std::uint64_t> trace_counter{0};
  std::atomic<std::uint64_t> traces_started{0};
  std::atomic<std::uint64_t> traces_sampled{0};
  std::atomic<std::uint64_t> spans_recorded{0};
  std::atomic<std::uint64_t> spans_dropped{0};
};

TracerCore& core() {
  static TracerCore instance;  // NOLINT: intentional process lifetime
  return instance;
}

void update_gate(TracerCore& c) {
  detail::g_tracing.store(
      c.session_active.load(std::memory_order_relaxed) ||
          c.flight_tap.load(std::memory_order_relaxed) != nullptr,
      std::memory_order_relaxed);
}

double clock_now(TracerCore& c) {
  return c.clock ? c.clock() : monotonic_s();
}

/// Seeded deterministic id: the n-th id drawn is a pure function of
/// (id_seed, n), never 0 so 0 stays the "no parent / no trace" sentinel.
std::uint64_t next_id(TracerCore& c) {
  const std::uint64_t n = c.id_counter.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state = c.id_seed + (n + 1) * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t id = pwx::splitmix64(state);
  return id == 0 ? 0x1d5ad5e1ULL : id;
}

Lane* lane_for(TracerCore& c, ThreadState& ts) {
  const std::uint64_t session = c.session.load(std::memory_order_acquire);
  if (ts.lane && ts.session == session) {
    return ts.lane.get();
  }
  const std::lock_guard<std::mutex> lock(c.mutex);
  auto lane = std::make_shared<Lane>(
      c.ring_capacity, static_cast<std::uint32_t>(c.lanes.size()));
  c.lanes.push_back(lane);
  ts.lane = std::move(lane);
  ts.session = c.session.load(std::memory_order_relaxed);
  return ts.lane.get();
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) {
    p <<= 1U;
  }
  return p;
}

}  // namespace

void Tracer::start(TracerConfig config) {
  TracerCore& c = core();
  const std::lock_guard<std::mutex> lock(c.mutex);
  // Bump the session first: thread-cached lanes from the previous session
  // stop matching and re-register on their next record.
  c.session.fetch_add(1, std::memory_order_release);
  c.lanes.clear();
  c.ring_capacity = round_up_pow2(config.ring_capacity == 0 ? 2 : config.ring_capacity);
  c.id_seed = config.id_seed;
  c.sample_every = config.sample_every == 0 ? 1 : config.sample_every;
  c.clock = config.clock;
  c.id_counter.store(0, std::memory_order_relaxed);
  c.trace_counter.store(0, std::memory_order_relaxed);
  c.traces_started.store(0, std::memory_order_relaxed);
  c.traces_sampled.store(0, std::memory_order_relaxed);
  c.spans_recorded.store(0, std::memory_order_relaxed);
  c.spans_dropped.store(0, std::memory_order_relaxed);
  c.session_active.store(true, std::memory_order_relaxed);
  update_gate(c);
  config_ = std::move(config);
  session_ = c.session.load(std::memory_order_relaxed);
}

void Tracer::stop() {
  TracerCore& c = core();
  const std::lock_guard<std::mutex> lock(c.mutex);
  c.session_active.store(false, std::memory_order_relaxed);
  update_gate(c);
}

std::vector<SpanRecord> Tracer::drain() {
  TracerCore& c = core();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::vector<SpanRecord> out;
  for (const auto& lane : c.lanes) {
    const std::size_t head = lane->head.load(std::memory_order_acquire);
    std::size_t tail = lane->tail.load(std::memory_order_relaxed);
    while (tail != head) {
      out.push_back(std::move(lane->slots[tail & lane->mask]));
      ++tail;
    }
    lane->tail.store(tail, std::memory_order_release);
  }
  return out;
}

TracerStats Tracer::stats() const {
  TracerCore& c = core();
  TracerStats stats;
  stats.traces_started = c.traces_started.load(std::memory_order_relaxed);
  stats.traces_sampled = c.traces_sampled.load(std::memory_order_relaxed);
  stats.spans_recorded = c.spans_recorded.load(std::memory_order_relaxed);
  stats.spans_dropped = c.spans_dropped.load(std::memory_order_relaxed);
  return stats;
}

double Tracer::now() const { return clock_now(core()); }

Tracer& tracer() {
  static Tracer instance;  // NOLINT: intentional process lifetime
  return instance;
}

std::uint64_t current_trace_id() {
  const ThreadState& ts = t_state;
  if (ts.stack.empty() || !ts.stack.back().sampled) {
    return 0;
  }
  return ts.stack.back().trace_id;
}

std::uint64_t current_span_id() {
  const ThreadState& ts = t_state;
  if (ts.stack.empty() || !ts.stack.back().sampled) {
    return 0;
  }
  return ts.stack.back().span_id;
}

void span_attr(std::string_view key, std::string_view value) {
  ThreadState& ts = t_state;
  if (ts.stack.empty() || !ts.stack.back().sampled) {
    return;
  }
  ts.stack.back().attrs.push_back(
      SpanAttr{std::string(key), std::string(value)});
}

void span_attr(std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", value);
  span_attr(key, std::string_view(buf));
}

void span_attr(std::string_view key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  span_attr(key, std::string_view(buf));
}

std::string format_span_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

namespace trace_detail {

bool begin_span(std::string_view name) {
  if (!tracing_active()) {
    return false;
  }
  TracerCore& c = core();
  ThreadState& ts = t_state;
  Frame frame;
  if (ts.stack.empty()) {
    c.traces_started.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t n = c.trace_counter.fetch_add(1, std::memory_order_relaxed);
    frame.sampled = c.sample_every <= 1 || n % c.sample_every == 0;
    if (frame.sampled) {
      c.traces_sampled.fetch_add(1, std::memory_order_relaxed);
      frame.trace_id = next_id(c);
      frame.span_id = next_id(c);
    }
  } else {
    const Frame& parent = ts.stack.back();
    frame.sampled = parent.sampled;
    if (frame.sampled) {
      frame.trace_id = parent.trace_id;
      frame.parent_id = parent.span_id;
      frame.span_id = next_id(c);
    }
  }
  if (frame.sampled) {
    frame.name.assign(name.data(), name.size());
    frame.start_s = clock_now(c);
  }
  ts.stack.push_back(std::move(frame));
  return true;
}

void end_span() {
  ThreadState& ts = t_state;
  if (ts.stack.empty()) {
    return;
  }
  Frame frame = std::move(ts.stack.back());
  ts.stack.pop_back();
  if (!frame.sampled) {
    return;
  }
  TracerCore& c = core();
  SpanRecord record;
  record.trace_id = frame.trace_id;
  record.span_id = frame.span_id;
  record.parent_id = frame.parent_id;
  record.name = std::move(frame.name);
  record.start_s = frame.start_s;
  record.end_s = clock_now(c);
  record.attrs = std::move(frame.attrs);
  // The flight recorder taps every completed span independently of the
  // collector, so a post-mortem dump never competes with drain().
  if (auto* tap = c.flight_tap.load(std::memory_order_relaxed)) {
    tap(record);
  }
  if (!c.session_active.load(std::memory_order_relaxed)) {
    return;  // flight-only mode: no collector session, nothing to ring
  }
  Lane* lane = lane_for(c, ts);
  record.thread = lane->thread;
  if (lane->try_push(std::move(record))) {
    c.spans_recorded.fetch_add(1, std::memory_order_relaxed);
  } else {
    c.spans_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void set_flight_tap(void (*tap)(const SpanRecord&)) {
  TracerCore& c = core();
  const std::lock_guard<std::mutex> lock(c.mutex);
  c.flight_tap.store(tap, std::memory_order_relaxed);
  update_gate(c);
}

}  // namespace trace_detail

}  // namespace pwx::obs
