# Empty dependencies file for ablation_ridge.
# This may be replaced when dependencies are built.
