# Empty compiler generated dependencies file for cluster_estimation.
# This may be replaced when dependencies are built.
