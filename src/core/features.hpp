// Equation 1 feature construction.
//
// The paper's power model:
//
//   P_total = ( Σ_n α_n · E_n · V² · f )  +  β · V² · f  +  γ · V  +  δ · Z
//             \_________ dynamic _________/                \__ static __/
//
// with E_n the rate of event n **per CPU cycle** ("since the value of the
// PMC events are related to the operating frequency f_clk, the PMC event
// rate E_n, i.e., the number of events per cpu cycle, is used" — this is the
// paper's multicollinearity-reduction step), V the measured core voltage,
// f the operating frequency, and Z == 1 (the OLS intercept).
//
// build_features() produces the design matrix [E_n·V²f ... | V²f | V]; the
// δ·Z term is the regression intercept. The per-second normalization is kept
// available for the ablation bench that reproduces the paper's argument.
#pragma once

#include <string>
#include <vector>

#include "acquire/dataset.hpp"
#include "la/matrix.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

/// How raw counter readings become model rates.
enum class RateNormalization {
  PerCycle,   ///< E_n = events / (elapsed · f) — the paper's choice
  PerSecond,  ///< E_n = events / elapsed — the ablation baseline
};

/// Which columns the design matrix carries.
struct FeatureSpec {
  std::vector<pmc::Preset> events;
  RateNormalization normalization = RateNormalization::PerCycle;
  bool include_dynamic_base = true;  ///< the β·V²f column
  bool include_static_v = true;      ///< the γ·V column

  std::size_t column_count() const {
    return events.size() + (include_dynamic_base ? 1 : 0) + (include_static_v ? 1 : 0);
  }
};

/// Design matrix for a dataset under a spec (no intercept column; the OLS
/// fit adds it as δ·Z).
la::Matrix build_features(const acquire::Dataset& dataset, const FeatureSpec& spec);

/// Feature matrix for a single row (1 x k), for streaming estimation.
la::Matrix build_features_row(const acquire::DataRow& row, const FeatureSpec& spec);

/// Human-readable column names matching build_features' layout.
std::vector<std::string> feature_names(const FeatureSpec& spec);

}  // namespace pwx::core
