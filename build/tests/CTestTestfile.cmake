# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/regress_test[1]_include.cmake")
include("/root/repo/build/tests/shrinkage_test[1]_include.cmake")
include("/root/repo/build/tests/pmc_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/acquire_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
