// Convenience least-squares drivers over the QR/SVD kernels.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::la {

/// Result of a least-squares solve.
struct LstsqResult {
  std::vector<double> x;        ///< solution (minimum-norm if rank deficient)
  std::vector<double> residual; ///< b - A x
  double residual_norm = 0.0;   ///< ||b - A x||_2
  bool full_rank = true;        ///< whether A had full column rank
};

/// Solve min ||A x - b||_2. Uses QR when A has full column rank, falling back
/// to the SVD pseudo-inverse for collinear designs.
LstsqResult lstsq(const Matrix& a, std::span<const double> b);

}  // namespace pwx::la
