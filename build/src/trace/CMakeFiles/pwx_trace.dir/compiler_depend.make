# Empty compiler generated dependencies file for pwx_trace.
# This may be replaced when dependencies are built.
