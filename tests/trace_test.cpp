// Tests for the OTF2-lite trace layer: records, the columnar event store,
// serialization (v3 + legacy v2), metric plugins, phase-profile
// post-processing, and batch campaign ingestion.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <tuple>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "trace/columns.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"
#include "trace/profile_campaign.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "workloads/registry.hpp"

namespace pwx::trace {
namespace {

Trace make_small_trace() {
  Trace t;
  t.set_attribute("workload", "unit");
  t.set_attribute("frequency_ghz", 2.4);
  t.set_attribute("threads", 4.0);
  const auto power = t.define_metric({"power", "W", MetricMode::AsyncAverage});
  const auto volt = t.define_metric({"core_voltage", "V", MetricMode::AsyncInstant});
  const auto ctr =
      t.define_metric({"PAPI_TOT_CYC", "events", MetricMode::CounterIncrement});
  t.append(RegionEnter{0, "phase_a"});
  t.append(MetricEvent{1000000000, power, 100.0});
  t.append(MetricEvent{1000000000, volt, 0.9});
  t.append(MetricEvent{1000000000, ctr, 5.0e9});
  t.append(MetricEvent{2000000000, power, 110.0});
  t.append(MetricEvent{2000000000, volt, 0.9});
  t.append(MetricEvent{2000000000, ctr, 5.2e9});
  t.append(RegionExit{2000000000, "phase_a"});
  return t;
}

// ---------------------------------------------------------------- trace core

TEST(Trace, MetricDefinitionAndLookup) {
  Trace t;
  const auto idx = t.define_metric({"power", "W", MetricMode::AsyncAverage});
  EXPECT_EQ(t.metric_index("power"), idx);
  EXPECT_TRUE(t.has_metric("power"));
  EXPECT_FALSE(t.has_metric("nope"));
  EXPECT_THROW(t.metric_index("nope"), InvalidArgument);
}

TEST(Trace, DuplicateMetricNameRejected) {
  Trace t;
  t.define_metric({"power", "W", MetricMode::AsyncAverage});
  EXPECT_THROW(t.define_metric({"power", "W", MetricMode::AsyncAverage}),
               InvalidArgument);
}

TEST(Trace, ChronologicalOrderEnforced) {
  Trace t;
  t.append(RegionEnter{100, "x"});
  EXPECT_THROW(t.append(RegionExit{50, "x"}), InvalidArgument);
}

TEST(Trace, MetricEventMustReferenceDefinedMetric) {
  Trace t;
  EXPECT_THROW(t.append(MetricEvent{0, 3, 1.0}), InvalidArgument);
}

TEST(Trace, AttributeConversions) {
  Trace t;
  t.set_attribute("threads", 24.0);
  t.set_attribute("name", "compute");
  EXPECT_DOUBLE_EQ(t.attribute_as_double("threads"), 24.0);
  EXPECT_EQ(t.attribute("name"), "compute");
  EXPECT_THROW(t.attribute("missing"), InvalidArgument);
  EXPECT_THROW(t.attribute_as_double("name"), InvalidArgument);
}

// ---------------------------------------------------------------- serialization

TEST(Serialize, RoundTripPreservesEverything) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  const Trace loaded = read_trace(buffer);

  EXPECT_EQ(loaded.attributes(), original.attributes());
  ASSERT_EQ(loaded.metrics().size(), original.metrics().size());
  for (std::size_t i = 0; i < loaded.metrics().size(); ++i) {
    EXPECT_EQ(loaded.metrics()[i].name, original.metrics()[i].name);
    EXPECT_EQ(loaded.metrics()[i].unit, original.metrics()[i].unit);
    EXPECT_EQ(loaded.metrics()[i].mode, original.metrics()[i].mode);
  }
  ASSERT_EQ(loaded.events().size(), original.events().size());
  for (std::size_t i = 0; i < loaded.events().size(); ++i) {
    EXPECT_EQ(Trace::event_time(loaded.events()[i]),
              Trace::event_time(original.events()[i]));
    EXPECT_EQ(loaded.events()[i].index(), original.events()[i].index());
  }
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "pwx_trace_test.otf2l";
  const Trace original = make_small_trace();
  write_trace_file(original, path);
  const Trace loaded = read_trace_file(path);
  EXPECT_EQ(loaded.events().size(), original.events().size());
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOTATRACE-----";
  EXPECT_THROW(read_trace(buffer), IoError);
}

TEST(Serialize, TruncatedStreamRejected) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_trace(truncated), IoError);
}

TEST(Serialize, CorruptedEventKindRejected) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  // The final event is RegionExit{t, "phase_a"}: kind(1) + time(8) +
  // length(4) + 7 characters = 20 bytes, followed by the 8-byte checksum
  // footer; flip the event's kind byte to garbage.
  data[data.size() - 28] = 99;
  std::stringstream corrupted(data);
  EXPECT_THROW(read_trace(corrupted), IoError);
}

TEST(Serialize, ChecksumCatchesPayloadBitFlip) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  // Flip one bit inside the last metric value's f64 payload — structurally
  // valid, so only the checksum can catch it.
  data[data.size() - 30] ^= 0x01;
  std::stringstream corrupted(data);
  EXPECT_THROW(read_trace(corrupted), IoError);
}

TEST(Serialize, IoErrorCarriesByteOffsetAndRecordIndex) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  data.resize(data.size() - 12);  // cut into the final event
  std::stringstream truncated(data);
  try {
    read_trace(truncated);
    FAIL() << "truncated trace must not parse";
  } catch (const IoError& e) {
    EXPECT_GE(e.byte_offset(), 0);
    EXPECT_GE(e.record_index(), 0);
    EXPECT_EQ(e.code(), ErrorCode::Corruption);
  }
}

// Every truncation and every bit flip must surface as a typed IoError —
// read_trace may never return a silently partial Trace.
TEST(Serialize, CorruptionSweepAlwaysFailsTyped) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;
  rc.seed = 7;
  const auto workload = workloads::find_workload("md");
  const auto run = engine.run(*workload, rc);
  const Trace original = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  std::stringstream buffer;
  write_trace(original, buffer);
  const std::string data = buffer.str();
  ASSERT_GT(data.size(), 128u);

  for (std::size_t cut = 0; cut < data.size(); cut += 64) {
    std::string truncated = data.substr(0, cut);
    std::stringstream in(truncated);
    EXPECT_THROW(read_trace(in), IoError) << "truncation at byte " << cut;
  }
  for (std::size_t pos = 0; pos < data.size(); pos += 64) {
    std::string flipped = data;
    flipped[pos] ^= 0x10;
    std::stringstream in(flipped);
    EXPECT_THROW(read_trace(in), IoError) << "bit flip at byte " << pos;
  }
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/file.otf2l"), IoError);
}

// ---------------------------------------------------------------- plugins

sim::RunResult quick_run(const char* workload_name = "compute") {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;
  rc.seed = 3;
  const auto workload = workloads::find_workload(workload_name);
  return engine.run(*workload, rc);
}

TEST(Plugins, StandardTraceHasPowerVoltageAndCounters) {
  const auto run = quick_run();
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC, pmc::Preset::PRF_DM});
  EXPECT_TRUE(t.has_metric("power"));
  EXPECT_TRUE(t.has_metric("core_voltage"));
  EXPECT_TRUE(t.has_metric("PAPI_TOT_CYC"));
  EXPECT_TRUE(t.has_metric("PAPI_PRF_DM"));
  EXPECT_FALSE(t.has_metric("PAPI_TLB_IM"));
  EXPECT_EQ(t.attribute("workload"), "compute");
  EXPECT_NEAR(t.attribute_as_double("frequency_ghz"), 2.4, 1e-9);
}

TEST(Plugins, EventCountMatchesIntervalsAndMetrics) {
  const auto run = quick_run();
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  // Per interval: power + voltage + 1 counter = 3 metric events; plus one
  // region enter and exit.
  EXPECT_EQ(t.events().size(), run.intervals.size() * 3 + 2);
}

TEST(Plugins, ApapiMetricNameUsesPapiPrefix) {
  EXPECT_EQ(ApapiPlugin::metric_name(pmc::Preset::BR_MSP), "PAPI_BR_MSP");
}

TEST(Plugins, ApapiRejectsEmptyEventSet) {
  EXPECT_THROW(ApapiPlugin({}), InvalidArgument);
}

TEST(Plugins, MultiPhaseRunProducesMultipleRegions) {
  const auto run = quick_run("md");
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  std::size_t enters = 0;
  for (const Event& e : t.events()) {
    enters += std::holds_alternative<RegionEnter>(e);
  }
  EXPECT_EQ(enters, 2u);  // md has two phases
}

// ---------------------------------------------------------------- phase profiles

TEST(PhaseProfile, AveragesAreTimeWeighted) {
  const Trace t = make_small_trace();
  const auto profiles = build_phase_profiles(t);
  ASSERT_EQ(profiles.size(), 1u);
  const PhaseProfile& p = profiles[0];
  EXPECT_EQ(p.workload, "unit");
  EXPECT_EQ(p.phase, "phase_a");
  EXPECT_DOUBLE_EQ(p.elapsed_s, 2.0);
  EXPECT_NEAR(p.avg_power_watts, 105.0, 1e-9);  // equal-length intervals
  EXPECT_NEAR(p.avg_voltage, 0.9, 1e-12);
  EXPECT_NEAR(p.rate(pmc::Preset::TOT_CYC), (5.0e9 + 5.2e9) / 2.0, 1.0);
  EXPECT_NEAR(p.rate_per_cycle(pmc::Preset::TOT_CYC), 5.1e9 / 2.4e9, 1e-6);
}

TEST(PhaseProfile, FromSimulatedRunMatchesIntervalAverages) {
  const auto run = quick_run();
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_INS});
  const auto profiles = build_phase_profiles(t);
  ASSERT_EQ(profiles.size(), 1u);
  double mean_p = 0;
  for (const auto& iv : run.intervals) {
    mean_p += iv.measured_power_watts;
  }
  mean_p /= static_cast<double>(run.intervals.size());
  EXPECT_NEAR(profiles[0].avg_power_watts, mean_p, 1e-6);
  EXPECT_EQ(profiles[0].threads, run.config.threads);
}

TEST(PhaseProfile, MissingCounterThrows) {
  const Trace t = make_small_trace();
  const auto profiles = build_phase_profiles(t);
  EXPECT_THROW(profiles[0].rate(pmc::Preset::PRF_DM), InvalidArgument);
  EXPECT_FALSE(profiles[0].has(pmc::Preset::PRF_DM));
  EXPECT_TRUE(profiles[0].has(pmc::Preset::TOT_CYC));
}

TEST(PhaseProfile, MultiPhaseTraceYieldsRowPerPhase) {
  const auto run = quick_run("md");
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  const auto profiles = build_phase_profiles(t);
  EXPECT_EQ(profiles.size(), 2u);
}

TEST(PhaseProfile, MergeAveragesPowerAndUnionsCounters) {
  PhaseProfile a;
  a.workload = "w";
  a.phase = "p";
  a.frequency_ghz = 2.4;
  a.threads = 4;
  a.elapsed_s = 1.0;
  a.avg_power_watts = 100.0;
  a.avg_voltage = 0.9;
  a.counter_rates[pmc::Preset::TOT_CYC] = 1e9;

  PhaseProfile b = a;
  b.elapsed_s = 3.0;
  b.avg_power_watts = 120.0;
  b.counter_rates.clear();
  b.counter_rates[pmc::Preset::PRF_DM] = 5e6;

  const PhaseProfile merged = merge_profiles({a, b});
  EXPECT_DOUBLE_EQ(merged.elapsed_s, 4.0);
  EXPECT_NEAR(merged.avg_power_watts, (100.0 * 1 + 120.0 * 3) / 4.0, 1e-9);
  // Counters recorded in only one run carry through with their own weight.
  EXPECT_DOUBLE_EQ(merged.rate(pmc::Preset::TOT_CYC), 1e9);
  EXPECT_DOUBLE_EQ(merged.rate(pmc::Preset::PRF_DM), 5e6);
  EXPECT_EQ(merged.runs_merged, 2u);
}

TEST(PhaseProfile, MergeRejectsMismatchedKeys) {
  PhaseProfile a;
  a.workload = "w";
  a.phase = "p";
  a.frequency_ghz = 2.4;
  a.threads = 4;
  a.elapsed_s = 1.0;
  PhaseProfile b = a;
  b.threads = 8;
  EXPECT_THROW(merge_profiles({a, b}), InvalidArgument);
  b = a;
  b.phase = "q";
  EXPECT_THROW(merge_profiles({a, b}), InvalidArgument);
}

TEST(PhaseProfile, MergeOfSingleProfileIsIdentity) {
  PhaseProfile a;
  a.workload = "w";
  a.phase = "p";
  a.frequency_ghz = 2.0;
  a.threads = 2;
  a.elapsed_s = 1.0;
  a.avg_power_watts = 50.0;
  const PhaseProfile merged = merge_profiles({a});
  EXPECT_DOUBLE_EQ(merged.avg_power_watts, 50.0);
  EXPECT_EQ(merged.runs_merged, 1u);
}

TEST(PhaseProfile, RepeatedRegionInstancesArePooled) {
  Trace t;
  t.set_attribute("workload", "w");
  t.set_attribute("frequency_ghz", 2.0);
  t.set_attribute("threads", 1.0);
  const auto power = t.define_metric({"power", "W", MetricMode::AsyncAverage});
  t.append(RegionEnter{0, "a"});
  t.append(MetricEvent{1000000000, power, 10.0});
  t.append(RegionExit{1000000000, "a"});
  t.append(RegionEnter{1000000000, "b"});
  t.append(MetricEvent{2000000000, power, 20.0});
  t.append(RegionExit{2000000000, "b"});
  t.append(RegionEnter{2000000000, "a"});
  t.append(MetricEvent{3000000000, power, 30.0});
  t.append(RegionExit{3000000000, "a"});
  const auto profiles = build_phase_profiles(t);
  ASSERT_EQ(profiles.size(), 2u);
  // Profiles sorted by name: "a" then "b".
  EXPECT_DOUBLE_EQ(profiles[0].elapsed_s, 2.0);
  EXPECT_NEAR(profiles[0].avg_power_watts, 20.0, 1e-9);  // (10+30)/2
  EXPECT_DOUBLE_EQ(profiles[1].elapsed_s, 1.0);
}

TEST(PhaseProfile, UnbalancedRegionsRejected) {
  Trace t;
  t.set_attribute("workload", "w");
  t.set_attribute("frequency_ghz", 2.0);
  t.set_attribute("threads", 1.0);
  t.append(RegionEnter{0, "a"});
  EXPECT_THROW(build_phase_profiles(t), InvalidArgument);
}

// ---------------------------------------------------------------- columnar store

/// Appends `count` random (but chronological and well-formed) events to `t`
/// and returns the same events as plain variant records.
std::vector<Event> append_random_events(Trace& t, std::size_t count,
                                        std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  std::uniform_int_distribution<std::uint64_t> dt_dist(0, 1000000);
  std::uniform_real_distribution<double> value_dist(-1e9, 1e9);
  const char* regions[] = {"alpha", "beta", "gamma"};
  const std::uint32_t metrics[] = {t.define_metric({"m0", "W", MetricMode::AsyncAverage}),
                                   t.define_metric({"m1", "V", MetricMode::AsyncInstant})};
  std::vector<Event> reference;
  std::uint64_t time = 0;
  for (std::size_t i = 0; i < count; ++i) {
    time += dt_dist(rng);
    switch (kind_dist(rng)) {
      case 0: {
        RegionEnter e{time, regions[i % 3]};
        t.append(e);
        reference.emplace_back(e);
        break;
      }
      case 1: {
        RegionExit e{time, regions[i % 3]};
        t.append(e);
        reference.emplace_back(e);
        break;
      }
      default: {
        MetricEvent e{time, metrics[i % 2], value_dist(rng)};
        t.append(e);
        reference.emplace_back(e);
        break;
      }
    }
  }
  return reference;
}

void expect_events_equal(const Trace& t, const std::vector<Event>& reference) {
  ASSERT_EQ(t.events().size(), reference.size());
  std::size_t i = 0;
  // Exercise the view's iterator and indexing simultaneously.
  for (const Event& event : t.events()) {
    ASSERT_EQ(event.index(), reference[i].index()) << "event " << i;
    const Event indexed = t.events()[i];
    ASSERT_EQ(indexed.index(), reference[i].index());
    if (const auto* enter = std::get_if<RegionEnter>(&event)) {
      EXPECT_EQ(enter->time_ns, std::get<RegionEnter>(reference[i]).time_ns);
      EXPECT_EQ(enter->region, std::get<RegionEnter>(reference[i]).region);
    } else if (const auto* exit = std::get_if<RegionExit>(&event)) {
      EXPECT_EQ(exit->time_ns, std::get<RegionExit>(reference[i]).time_ns);
      EXPECT_EQ(exit->region, std::get<RegionExit>(reference[i]).region);
    } else {
      const auto& metric = std::get<MetricEvent>(event);
      const auto& expected = std::get<MetricEvent>(reference[i]);
      EXPECT_EQ(metric.time_ns, expected.time_ns);
      EXPECT_EQ(metric.metric, expected.metric);
      EXPECT_EQ(metric.value, expected.value);
    }
    ++i;
  }
}

TEST(Columns, ViewMatchesAppendedVariantsOnRandomTraces) {
  for (std::uint32_t seed : {1u, 2u, 3u}) {
    Trace t;
    const auto reference = append_random_events(t, 500, seed);
    expect_events_equal(t, reference);
    EXPECT_EQ(t.columns().size(), reference.size());
  }
}

TEST(Columns, EquivalenceSurvivesSerializationRoundTrip) {
  Trace t;
  t.set_attribute("workload", "rand");
  const auto reference = append_random_events(t, 300, 99);
  std::stringstream buffer;
  write_trace(t, buffer);
  const Trace loaded = read_trace(buffer);
  expect_events_equal(loaded, reference);
}

TEST(Columns, StringTableInternsAndLooksUp) {
  StringTable table;
  EXPECT_EQ(table.intern("a"), 0u);
  EXPECT_EQ(table.intern("b"), 1u);
  EXPECT_EQ(table.intern("a"), 0u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.at(1), "b");
  EXPECT_EQ(table.find("b"), std::optional<std::uint32_t>(1u));
  EXPECT_FALSE(table.find("c").has_value());
  EXPECT_THROW(table.at(2), InvalidArgument);
}

TEST(Columns, AdoptColumnsValidatesInvariants) {
  {  // chronology
    EventColumns c;
    c.push_enter(100, c.regions.intern("a"));
    c.push_exit(50, 0);
    Trace t;
    EXPECT_THROW(t.adopt_columns(std::move(c)), InvalidArgument);
  }
  {  // undefined metric id
    EventColumns c;
    c.push_metric(0, 7, 1.0);
    Trace t;
    EXPECT_THROW(t.adopt_columns(std::move(c)), InvalidArgument);
  }
  {  // unknown kind byte
    EventColumns c;
    c.push_enter(0, c.regions.intern("a"));
    c.kinds[0] = 42;
    Trace t;
    EXPECT_THROW(t.adopt_columns(std::move(c)), InvalidArgument);
  }
}

// ---------------------------------------------------------------- v2 compatibility

TEST(SerializeV2, RoundTripsThroughSharedReader) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace_v2(original, buffer);
  const Trace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.attributes(), original.attributes());
  ASSERT_EQ(loaded.metrics().size(), original.metrics().size());
  ASSERT_EQ(loaded.events().size(), original.events().size());
  for (std::size_t i = 0; i < loaded.events().size(); ++i) {
    EXPECT_EQ(Trace::event_time(loaded.events()[i]),
              Trace::event_time(original.events()[i]));
    EXPECT_EQ(loaded.events()[i].index(), original.events()[i].index());
  }
}

// Golden v2 bytes of make_small_trace(), captured before the v3 format
// landed. Guards two contracts at once: archived v2 files stay readable,
// and write_trace_v2 keeps producing the exact legacy bytes.
const unsigned char kGoldenV2[] = {
    0x4f, 0x54, 0x46, 0x32, 0x4c, 0x54, 0x76, 0x32, 0x03, 0x00, 0x00, 0x00,
    0x0d, 0x00, 0x00, 0x00, 0x66, 0x72, 0x65, 0x71, 0x75, 0x65, 0x6e, 0x63,
    0x79, 0x5f, 0x67, 0x68, 0x7a, 0x0b, 0x00, 0x00, 0x00, 0x32, 0x2e, 0x34,
    0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x07, 0x00, 0x00, 0x00,
    0x74, 0x68, 0x72, 0x65, 0x61, 0x64, 0x73, 0x0b, 0x00, 0x00, 0x00, 0x34,
    0x2e, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x08, 0x00,
    0x00, 0x00, 0x77, 0x6f, 0x72, 0x6b, 0x6c, 0x6f, 0x61, 0x64, 0x04, 0x00,
    0x00, 0x00, 0x75, 0x6e, 0x69, 0x74, 0x03, 0x00, 0x00, 0x00, 0x05, 0x00,
    0x00, 0x00, 0x70, 0x6f, 0x77, 0x65, 0x72, 0x01, 0x00, 0x00, 0x00, 0x57,
    0x00, 0x0c, 0x00, 0x00, 0x00, 0x63, 0x6f, 0x72, 0x65, 0x5f, 0x76, 0x6f,
    0x6c, 0x74, 0x61, 0x67, 0x65, 0x01, 0x00, 0x00, 0x00, 0x56, 0x01, 0x0c,
    0x00, 0x00, 0x00, 0x50, 0x41, 0x50, 0x49, 0x5f, 0x54, 0x4f, 0x54, 0x5f,
    0x43, 0x59, 0x43, 0x06, 0x00, 0x00, 0x00, 0x65, 0x76, 0x65, 0x6e, 0x74,
    0x73, 0x02, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, 0x00, 0x00, 0x00, 0x70,
    0x68, 0x61, 0x73, 0x65, 0x5f, 0x61, 0x03, 0x00, 0xca, 0x9a, 0x3b, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x59, 0x40, 0x03, 0x00, 0xca, 0x9a, 0x3b, 0x00, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x00, 0x00, 0xcd, 0xcc, 0xcc, 0xcc, 0xcc, 0xcc, 0xec, 0x3f,
    0x03, 0x00, 0xca, 0x9a, 0x3b, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x20, 0x5f, 0xa0, 0xf2, 0x41, 0x03, 0x00, 0x94,
    0x35, 0x77, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x80, 0x5b, 0x40, 0x03, 0x00, 0x94, 0x35, 0x77, 0x00,
    0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0xcd, 0xcc, 0xcc, 0xcc, 0xcc,
    0xcc, 0xec, 0x3f, 0x03, 0x00, 0x94, 0x35, 0x77, 0x00, 0x00, 0x00, 0x00,
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x40, 0x1b, 0x5f, 0xf3, 0x41,
    0x02, 0x00, 0x94, 0x35, 0x77, 0x00, 0x00, 0x00, 0x00, 0x07, 0x00, 0x00,
    0x00, 0x70, 0x68, 0x61, 0x73, 0x65, 0x5f, 0x61, 0x90, 0xd5, 0xc7, 0x56,
    0x6d, 0x76, 0xa7, 0xc9};

TEST(SerializeV2, GoldenBytesStayReadable) {
  const std::string data(reinterpret_cast<const char*>(kGoldenV2), sizeof kGoldenV2);
  std::stringstream in(data);
  const Trace loaded = read_trace(in);
  const Trace expected = make_small_trace();
  EXPECT_EQ(loaded.attributes(), expected.attributes());
  ASSERT_EQ(loaded.metrics().size(), 3u);
  EXPECT_EQ(loaded.metrics()[2].name, "PAPI_TOT_CYC");
  ASSERT_EQ(loaded.events().size(), expected.events().size());
  const auto profiles = build_phase_profiles(loaded);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_NEAR(profiles[0].avg_power_watts, 105.0, 1e-9);
}

TEST(SerializeV2, WriterReproducesGoldenBytes) {
  std::ostringstream os;
  write_trace_v2(make_small_trace(), os);
  const std::string produced = os.str();
  ASSERT_EQ(produced.size(), sizeof kGoldenV2);
  EXPECT_EQ(produced,
            std::string(reinterpret_cast<const char*>(kGoldenV2), sizeof kGoldenV2));
}

TEST(SerializeV2, CorruptionSweepAlwaysFailsTyped) {
  const auto run = quick_run("md");
  const Trace original = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  std::stringstream buffer;
  write_trace_v2(original, buffer);
  const std::string data = buffer.str();
  ASSERT_GT(data.size(), 128u);
  for (std::size_t cut = 0; cut < data.size(); cut += 64) {
    std::stringstream in(data.substr(0, cut));
    EXPECT_THROW(read_trace(in), IoError) << "truncation at byte " << cut;
  }
  for (std::size_t pos = 0; pos < data.size(); pos += 64) {
    std::string flipped = data;
    flipped[pos] ^= 0x10;
    std::stringstream in(flipped);
    EXPECT_THROW(read_trace(in), IoError) << "bit flip at byte " << pos;
  }
}

TEST(Serialize, V3RoundTripIsBitIdentical) {
  const auto run = quick_run("md");
  const Trace original = build_standard_trace(run, {pmc::Preset::TOT_CYC,
                                                    pmc::Preset::PRF_DM});
  std::stringstream first;
  write_trace(original, first);
  std::stringstream in(first.str());
  const Trace loaded = read_trace(in);
  std::stringstream second;
  write_trace(loaded, second);
  EXPECT_EQ(first.str(), second.str());
}

// Every truncation of a v3 stream must carry a usable diagnosis: a byte
// offset always, and — when the cut lands inside the bulk event arrays — a
// non-negative record index (the first event that could not be recovered).
TEST(Serialize, V3TruncationSweepKeepsOffsetContract) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  const std::string data = buffer.str();

  // The event section holds 8 events; its arrays occupy the last
  // 8*(8+1+4+8) bytes of the body before the checksum footer.
  const std::size_t arrays_begin = data.size() - 8 - 8 * 21;
  for (std::size_t cut = 9; cut < data.size(); cut += 7) {
    std::stringstream in(data.substr(0, cut));
    try {
      read_trace(in);
      FAIL() << "truncation at byte " << cut << " must not parse";
    } catch (const IoError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Corruption) << "cut " << cut;
      EXPECT_GE(e.byte_offset(), 0) << "cut " << cut;
      if (cut >= arrays_begin + 8) {
        EXPECT_GE(e.record_index(), 0) << "cut " << cut;
      }
    }
  }
}

// ---------------------------------------------------------------- profile campaign

/// Scratch directory for the campaign fixture. Each gtest case runs as its
/// own ctest process, so the name carries the pid to keep concurrent test
/// processes from rewriting each other's fixture files mid-read.
std::filesystem::path campaign_fixture_dir() {
  return std::filesystem::temp_directory_path() /
         ("pwx_trace_campaign_test_" + std::to_string(::getpid()));
}

/// A small multiplexed campaign fixture: two event groups per workload, so
/// batch ingestion has real cross-run merging to do.
const std::vector<std::string>& campaign_fixture_files() {
  static const std::vector<std::string> paths = [] {
    const sim::Engine engine = sim::Engine::haswell_ep();
    const char* names[] = {"md", "md", "compute", "compute", "matmul", "matmul"};
    const std::vector<pmc::Preset> groups[2] = {
        {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS},
        {pmc::Preset::PRF_DM, pmc::Preset::BR_MSP}};
    const auto dir = campaign_fixture_dir();
    std::filesystem::create_directories(dir);
    std::vector<std::string> out;
    for (std::size_t i = 0; i < 6; ++i) {
      sim::RunConfig rc;
      rc.interval_s = 0.25;
      rc.duration_scale = 0.1;
      rc.seed = 40 + i;
      const auto workload = workloads::find_workload(names[i]);
      const Trace t =
          build_standard_trace(engine.run(*workload, rc), groups[i % 2]);
      const std::string path = (dir / ("t" + std::to_string(i) + ".otf2l")).string();
      write_trace_file(t, path);
      out.push_back(path);
    }
    return out;
  }();
  return paths;
}

/// The plain serial loop ProfileCampaign must match bit for bit.
std::vector<PhaseProfile> serial_reference(const std::vector<std::string>& paths) {
  std::vector<std::vector<PhaseProfile>> groups;
  std::vector<PhaseProfile> keys;
  for (const std::string& path : paths) {
    for (PhaseProfile& p : build_phase_profiles(read_trace_file(path))) {
      std::size_t slot = keys.size();
      for (std::size_t k = 0; k < keys.size(); ++k) {
        if (keys[k].workload == p.workload && keys[k].phase == p.phase &&
            keys[k].frequency_ghz == p.frequency_ghz && keys[k].threads == p.threads) {
          slot = k;
          break;
        }
      }
      if (slot == keys.size()) {
        keys.push_back(p);
        groups.emplace_back();
      }
      groups[slot].push_back(std::move(p));
    }
  }
  std::vector<PhaseProfile> out;
  for (const auto& group : groups) {
    out.push_back(merge_profiles(group));
  }
  return out;
}

void expect_profiles_identical(const std::vector<PhaseProfile>& actual,
                               const std::vector<PhaseProfile>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].workload, expected[i].workload);
    EXPECT_EQ(actual[i].phase, expected[i].phase);
    EXPECT_EQ(actual[i].frequency_ghz, expected[i].frequency_ghz);
    EXPECT_EQ(actual[i].threads, expected[i].threads);
    EXPECT_EQ(actual[i].start_s, expected[i].start_s);
    EXPECT_EQ(actual[i].end_s, expected[i].end_s);
    EXPECT_EQ(actual[i].elapsed_s, expected[i].elapsed_s);
    EXPECT_EQ(actual[i].avg_power_watts, expected[i].avg_power_watts);
    EXPECT_EQ(actual[i].avg_voltage, expected[i].avg_voltage);
    EXPECT_EQ(actual[i].runs_merged, expected[i].runs_merged);
    EXPECT_EQ(actual[i].counter_rates, expected[i].counter_rates);  // exact doubles
  }
}

class ProfileCampaignEquivalence
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ProfileCampaignEquivalence, BatchBitIdenticalToSerialLoop) {
  const auto [threads, parallel] = GetParam();
#ifdef _OPENMP
  omp_set_num_threads(threads);
#endif
  const auto& paths = campaign_fixture_files();
  ProfileCampaignOptions options;
  options.parallel = parallel;
  const auto batch = profile_trace_files(paths, options);
  const auto expected = serial_reference(paths);
  EXPECT_GT(batch.size(), 0u);
  expect_profiles_identical(batch, expected);
#ifdef _OPENMP
  omp_set_num_threads(0);  // restore the runtime default
#endif
}

INSTANTIATE_TEST_SUITE_P(ThreadAndParallelSweep, ProfileCampaignEquivalence,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Bool()));

TEST(ProfileCampaign, MergesMultiplexedGroupsAcrossRuns) {
  const auto profiles = profile_trace_files(campaign_fixture_files());
  // 3 workloads; md has two phases -> 4 merged rows, each covering 2 runs
  // and carrying all four multiplexed counters.
  ASSERT_EQ(profiles.size(), 4u);
  for (const PhaseProfile& p : profiles) {
    EXPECT_EQ(p.runs_merged, 2u);
    EXPECT_TRUE(p.has(pmc::Preset::TOT_CYC));
    EXPECT_TRUE(p.has(pmc::Preset::PRF_DM));
  }
}

TEST(ProfileCampaign, NoMergeKeepsPerRunRows) {
  ProfileCampaignOptions options;
  options.merge = false;
  const auto profiles = profile_trace_files(campaign_fixture_files(), options);
  // md twice (2 phases each) + compute twice + matmul twice = 8 rows.
  EXPECT_EQ(profiles.size(), 8u);
  for (const PhaseProfile& p : profiles) {
    EXPECT_EQ(p.runs_merged, 1u);
  }
}

TEST(ProfileCampaign, ErrorCarriesOffendingPath) {
  auto paths = campaign_fixture_files();
  paths.insert(paths.begin() + 1, "/nonexistent/missing.otf2l");
  try {
    profile_trace_files(paths);
    FAIL() << "missing file must throw";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("missing.otf2l"), std::string::npos);
  }
}

TEST(ProfileCampaign, CorruptFileSurfacesTypedError) {
  auto paths = campaign_fixture_files();
  // Write a corrupted copy of the first trace and splice it in.
  std::ifstream in(paths[0], std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string data = ss.str();
  data[data.size() / 2] ^= 0x04;
  const auto bad = campaign_fixture_dir() / "bad.otf2l";
  {
    std::ofstream out(bad, std::ios::binary);
    out << data;
  }
  paths.push_back(bad.string());
  try {
    profile_trace_files(paths);
    FAIL() << "corrupt file must throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Corruption);
    EXPECT_NE(std::string(e.what()).find("bad.otf2l"), std::string::npos);
  }
}

}  // namespace
}  // namespace pwx::trace
