#include "serve/refresh.hpp"

#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "core/dense_kernels.hpp"
#include "core/model.hpp"
#include "core/model_io.hpp"
#include "core/selection.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "stats/metrics.hpp"

namespace pwx::serve {

namespace {

struct RefreshMetrics {
  obs::Counter& attempts = obs::registry().counter(
      "serve.refresh_attempts", "model refresh pipelines started");
  obs::Counter& published = obs::registry().counter(
      "serve.refresh_published", "candidate models published");
  obs::Counter& rejected_implausible = obs::registry().counter(
      "serve.refresh_rejected_implausible",
      "candidates rejected by the plausibility gate");
  obs::Counter& rejected_validation = obs::registry().counter(
      "serve.refresh_rejected_validation",
      "candidates rejected by the holdout-MAPE gate");
  obs::Counter& rejected_timeout = obs::registry().counter(
      "serve.refresh_rejected_timeout", "validation watchdog expiries");
  obs::Counter& rejected_stale = obs::registry().counter(
      "serve.refresh_rejected_stale",
      "publishes refused because the epoch moved on");
  obs::Counter& failed = obs::registry().counter(
      "serve.refresh_failed", "refresh pipelines that errored before a gate");
  obs::Gauge& candidate_mape = obs::registry().gauge(
      "serve.candidate_mape_pct", "last candidate's holdout MAPE");
  obs::Gauge& incumbent_mape = obs::registry().gauge(
      "serve.incumbent_mape_pct", "incumbent's holdout MAPE at last refresh");
  obs::Histogram& seconds = obs::registry().histogram(
      "serve.refresh_seconds", {}, "refresh pipeline wall time");
};

RefreshMetrics& refresh_metrics() {
  static RefreshMetrics metrics;
  return metrics;
}

/// Per-stage wall-time histograms — stage latency in plain metrics even
/// with tracing off (the satellite's serve.refresh.stage_seconds.<stage>).
struct StageHistograms {
  obs::Histogram& ingest = obs::registry().histogram(
      "serve.refresh.stage_seconds.ingest", {},
      "refresh stage: corpus ingest + holdout split");
  obs::Histogram& select = obs::registry().histogram(
      "serve.refresh.stage_seconds.select", {},
      "refresh stage: event selection");
  obs::Histogram& fit = obs::registry().histogram(
      "serve.refresh.stage_seconds.fit", {},
      "refresh stage: candidate fit");
  obs::Histogram& plausibility = obs::registry().histogram(
      "serve.refresh.stage_seconds.plausibility", {},
      "refresh stage: plausibility gate");
  obs::Histogram& validation = obs::registry().histogram(
      "serve.refresh.stage_seconds.validation", {},
      "refresh stage: validation gate");
  obs::Histogram& publish = obs::registry().histogram(
      "serve.refresh.stage_seconds.publish", {},
      "refresh stage: epoch publish");
};

obs::Histogram& stage_seconds(RefreshStage stage) {
  static StageHistograms histograms;
  switch (stage) {
    case RefreshStage::Ingest: return histograms.ingest;
    case RefreshStage::Select: return histograms.select;
    case RefreshStage::Fit: return histograms.fit;
    case RefreshStage::Plausibility: return histograms.plausibility;
    case RefreshStage::Validation: return histograms.validation;
    case RefreshStage::Publish: return histograms.publish;
    case RefreshStage::None: break;
  }
  return histograms.ingest;
}

/// RAII stage bracket: marks the report's current stage, opens the child
/// span, and times the scope into the stage histogram. Early returns and
/// exceptions unwind through it, so the breached stage is always the one
/// recorded last.
class StageScope {
public:
  StageScope(RefreshReport& report, RefreshStage stage, std::string_view span_name)
      : span_(span_name), timer_(stage_seconds(stage)) {
    report.stage = stage;
  }

private:
  obs::Span span_;
  obs::ScopedTimer timer_;
};

void count_exit(RefreshStatus status) {
  if (!obs::enabled()) {
    return;
  }
  RefreshMetrics& metrics = refresh_metrics();
  switch (status) {
    case RefreshStatus::Published: metrics.published.add_unguarded(); break;
    case RefreshStatus::RejectedImplausible:
      metrics.rejected_implausible.add_unguarded();
      break;
    case RefreshStatus::RejectedValidation:
      metrics.rejected_validation.add_unguarded();
      break;
    case RefreshStatus::RejectedTimeout:
      metrics.rejected_timeout.add_unguarded();
      break;
    case RefreshStatus::RejectedStale:
      metrics.rejected_stale.add_unguarded();
      break;
    case RefreshStatus::Failed: metrics.failed.add_unguarded(); break;
  }
}

/// True when every prediction is finite (the holdout plausibility probe).
bool finite_predictions(const std::vector<double>& predicted) {
  for (const double p : predicted) {
    if (!std::isfinite(p)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view refresh_status_name(RefreshStatus status) {
  switch (status) {
    case RefreshStatus::Published: return "published";
    case RefreshStatus::RejectedImplausible: return "rejected_implausible";
    case RefreshStatus::RejectedValidation: return "rejected_validation";
    case RefreshStatus::RejectedTimeout: return "rejected_timeout";
    case RefreshStatus::RejectedStale: return "rejected_stale";
    case RefreshStatus::Failed: return "failed";
  }
  return "unknown";
}

std::string_view refresh_stage_name(RefreshStage stage) {
  switch (stage) {
    case RefreshStage::None: return "none";
    case RefreshStage::Ingest: return "ingest";
    case RefreshStage::Select: return "select";
    case RefreshStage::Fit: return "fit";
    case RefreshStage::Plausibility: return "plausibility";
    case RefreshStage::Validation: return "validation";
    case RefreshStage::Publish: return "publish";
  }
  return "unknown";
}

namespace {

RefreshReport refresh_model_impl(core::LayoutEpoch& epoch,
                                 const RefreshConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  refresh_metrics().attempts.add();

  RefreshReport report;
  report.incumbent_generation = epoch.generation();
  const std::shared_ptr<const core::PublishedModel> incumbent = epoch.current();

  const auto finish = [&](RefreshStatus status,
                          std::string detail) -> RefreshReport {
    report.status = status;
    report.detail = std::move(detail);
    report.elapsed_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    count_exit(status);
    if (obs::enabled()) {
      refresh_metrics().seconds.observe(report.elapsed_s);
    }
    return report;
  };

  // --- Re-ingest the corpus and fit a candidate. Any throw here is a
  // pipeline failure, not a gate decision; report.stage (set by the
  // innermost StageScope) names the stage that threw.
  core::PowerModel candidate;
  acquire::HoldoutSplit split;
  try {
    if (config.trace_paths.empty()) {
      return finish(RefreshStatus::Failed, "no trace files configured");
    }
    std::vector<pmc::Preset> common_presets;
    {
      const StageScope stage(report, RefreshStage::Ingest, "refresh.ingest");
      acquire::Dataset dataset =
          acquire::ingest_trace_files(config.trace_paths, config.ingest);
      report.dataset_rows = dataset.size();
      obs::span_attr("rows", static_cast<std::uint64_t>(dataset.size()));
      if (dataset.size() < 8) {
        return finish(RefreshStatus::Failed,
                      "retraining corpus too small: " +
                          std::to_string(dataset.size()) + " rows");
      }
      common_presets = dataset.common_presets();
      split = acquire::split_holdout(dataset, config.holdout_fraction,
                                     config.holdout_seed);
      report.holdout_rows = split.holdout.size();
    }

    {
      const StageScope stage(report, RefreshStage::Select, "refresh.select");
      core::SelectionOptions selection;
      selection.count = config.event_count;
      selection.max_mean_vif = config.max_mean_vif;
      const core::SelectionResult selected =
          core::select_events(split.train, common_presets, selection);
      report.selected_events = selected.selected();
      obs::span_attr("events",
                     static_cast<std::uint64_t>(report.selected_events.size()));
    }

    {
      const StageScope stage(report, RefreshStage::Fit, "refresh.fit");
      core::FeatureSpec spec;
      spec.events = report.selected_events;
      candidate = core::train_model(split.train, spec);
      report.candidate_r_squared = candidate.fit().r_squared;
      obs::span_attr("r_squared", report.candidate_r_squared);
    }
  } catch (const std::exception& e) {
    return finish(RefreshStatus::Failed,
                  std::string("retrain pipeline error: ") + e.what());
  }

  // --- Fault hook: the candidate loses trailing coefficients between fit
  // and gate (a torn hand-off). The plausibility gate must catch it.
  if (config.injector != nullptr &&
      config.injector->fires(fault::FaultKind::TruncatedCandidate,
                             config.fault_site, config.attempt) &&
      !candidate.fit().beta.empty()) {
    regress::OlsResult torn = candidate.fit();
    torn.beta.pop_back();
    if (!torn.standard_error.empty()) {
      torn.standard_error.pop_back();
    }
    candidate = core::PowerModel(candidate.spec(), std::move(torn));
  }

  // --- Gate 1: plausibility. The candidate must survive the exact checks a
  // model file must pass (JSON round-trip re-validates coefficient counts
  // and finiteness) and must predict finite power on the holdout.
  std::vector<double> candidate_predicted;
  {
    const StageScope stage(report, RefreshStage::Plausibility,
                           "refresh.plausibility");
    try {
      (void)core::model_from_json(core::model_to_json(candidate));
      // Score the holdout through the batched kernel path. Rows embed as
      // elapsed = 1.0 / counts = rate lanes, so every lane is bit-identical
      // to candidate.predict(split.holdout) — same gate verdicts, SIMD
      // throughput. The ModelLayout constructor and the strict append_row
      // re-validate the candidate (a torn model or unusable row throws here
      // and is rejected as implausible, exactly like predict would).
      const core::ModelLayout layout(candidate);
      core::SampleBatch batch;
      batch.reset(layout, split.holdout.rows().size());
      for (const acquire::DataRow& row : split.holdout.rows()) {
        batch.append_row(layout, row);
      }
      candidate_predicted.resize(split.holdout.rows().size());
      core::predict_batch(layout, batch, candidate_predicted);
    } catch (const std::exception& e) {
      return finish(RefreshStatus::RejectedImplausible,
                    std::string("plausibility gate: ") + e.what());
    }
    if (!finite_predictions(candidate_predicted)) {
      return finish(RefreshStatus::RejectedImplausible,
                    "plausibility gate: non-finite holdout prediction");
    }
  }

  // --- Gate 2: validation against the incumbent on the same holdout.
  try {
    const StageScope stage(report, RefreshStage::Validation,
                           "refresh.validation");
    const std::vector<double> actual = split.holdout.power();
    report.candidate_holdout_mape_pct = stats::mape(actual, candidate_predicted);
    obs::span_attr("candidate_mape_pct", report.candidate_holdout_mape_pct);
    if (obs::enabled()) {
      refresh_metrics().candidate_mape.set_unguarded(
          report.candidate_holdout_mape_pct);
    }
    // The incumbent may require events the new corpus never recorded; then
    // it cannot be scored and only the absolute ceiling applies.
    double incumbent_mape = std::numeric_limits<double>::infinity();
    try {
      const std::vector<double> incumbent_predicted =
          incumbent->model.predict(split.holdout);
      incumbent_mape = stats::mape(actual, incumbent_predicted);
    } catch (const std::exception&) {
    }
    report.incumbent_holdout_mape_pct = incumbent_mape;
    if (obs::enabled() && std::isfinite(incumbent_mape)) {
      refresh_metrics().incumbent_mape.set_unguarded(incumbent_mape);
    }

    const double validation_elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const bool watchdog_fired =
        validation_elapsed_s > config.validation_deadline_s ||
        (config.injector != nullptr &&
         config.injector->fires(fault::FaultKind::ValidationTimeout,
                                config.fault_site, config.attempt));
    if (watchdog_fired) {
      return finish(RefreshStatus::RejectedTimeout,
                    "validation watchdog expired");
    }

    if (report.candidate_holdout_mape_pct > config.max_holdout_mape_pct) {
      return finish(RefreshStatus::RejectedValidation,
                    "holdout MAPE " +
                        std::to_string(report.candidate_holdout_mape_pct) +
                        "% exceeds ceiling " +
                        std::to_string(config.max_holdout_mape_pct) + "%");
    }
    if (std::isfinite(incumbent_mape) &&
        report.candidate_holdout_mape_pct >
            incumbent_mape + config.max_mape_regression_pct) {
      return finish(RefreshStatus::RejectedValidation,
                    "holdout MAPE " +
                        std::to_string(report.candidate_holdout_mape_pct) +
                        "% regresses past incumbent " +
                        std::to_string(incumbent_mape) + "% + margin");
    }
  } catch (const std::exception& e) {
    return finish(RefreshStatus::Failed,
                  std::string("validation gate error: ") + e.what());
  }

  // --- Publish through the generation guard. A fault here models the
  // classic slow-retrainer race: publishing against a generation the
  // refresher never actually observed.
  const StageScope stage(report, RefreshStage::Publish, "refresh.publish");
  std::uint64_t expected = report.incumbent_generation;
  if (config.injector != nullptr &&
      config.injector->fires(fault::FaultKind::StaleLayoutPublish,
                             config.fault_site, config.attempt)) {
    expected = expected > 1 ? expected - 1 : expected + 1;
  }
  const std::optional<std::uint64_t> published =
      epoch.try_publish(std::move(candidate), expected);
  if (!published) {
    return finish(RefreshStatus::RejectedStale,
                  "epoch generation moved past " + std::to_string(expected));
  }
  report.published_generation = *published;
  obs::span_attr("generation", *published);
  return finish(RefreshStatus::Published,
                "published generation " + std::to_string(*published));
}

}  // namespace

RefreshReport refresh_model(core::LayoutEpoch& epoch,
                            const RefreshConfig& config) {
  RefreshReport report;
  {
    // Root span: the six stage scopes above are its children, so a sampled
    // refresh shows up in a trace as one tree with per-stage attribution.
    PWX_SPAN("serve.refresh_model");
    report = refresh_model_impl(epoch, config);
    obs::span_attr("status", refresh_status_name(report.status));
    obs::span_attr("stage", refresh_stage_name(report.stage));
  }
  // Flight-recorder trigger on any non-Published exit — after the root span
  // closed, so the dump's ring contains the whole refresh tree including
  // the breached stage's span.
  if (!report.published() && obs::flight().armed()) {
    obs::flight().trigger(std::string("refresh_") +
                          std::string(refresh_status_name(report.status)));
  }
  return report;
}

}  // namespace pwx::serve
