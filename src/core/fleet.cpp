#include "core/fleet.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pwx::core {

FleetEstimator::FleetEstimator(PowerModel node_model, double smoothing,
                               double staleness_horizon_s)
    : model_(std::move(node_model)), smoothing_(smoothing),
      staleness_horizon_s_(staleness_horizon_s) {
  PWX_REQUIRE(staleness_horizon_s_ > 0.0, "staleness horizon must be positive");
}

double FleetEstimator::ingest(const std::string& node, const CounterSample& sample,
                              double now_s) {
  PWX_REQUIRE(!node.empty(), "node name must not be empty");
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    it = nodes_.emplace(node, NodeState{OnlineEstimator(model_, smoothing_), 0.0, -1.0})
             .first;
  }
  NodeState& state = it->second;
  PWX_REQUIRE(now_s >= state.last_seen_s, "fleet time went backwards for node '", node,
              "'");
  state.last_estimate = state.estimator.estimate_guarded(sample);
  state.last_seen_s = now_s;
  return state.last_estimate;
}

FleetSnapshot FleetEstimator::snapshot(double now_s) const {
  FleetSnapshot snap;
  bool first = true;
  for (const auto& [name, state] : nodes_) {
    if (state.last_seen_s < 0.0 ||
        now_s - state.last_seen_s > staleness_horizon_s_) {
      snap.nodes_stale += 1;
      continue;
    }
    const HealthState health = state.estimator.health();
    if (health == HealthState::Failed) {
      snap.nodes_failed += 1;
      continue;
    }
    if (health == HealthState::Degraded) {
      snap.nodes_degraded += 1;
    }
    snap.total_watts += state.last_estimate;
    snap.nodes_reporting += 1;
    if (first) {
      snap.max_node_watts = snap.min_node_watts = state.last_estimate;
      first = false;
    } else {
      snap.max_node_watts = std::max(snap.max_node_watts, state.last_estimate);
      snap.min_node_watts = std::min(snap.min_node_watts, state.last_estimate);
    }
  }
  if (obs::enabled()) {
    obs::MetricRegistry& reg = obs::registry();
    reg.gauge("fleet.nodes_reporting", "nodes contributing to the fleet total")
        .set(static_cast<double>(snap.nodes_reporting));
    reg.gauge("fleet.nodes_stale", "nodes past the staleness horizon")
        .set(static_cast<double>(snap.nodes_stale));
    reg.gauge("fleet.nodes_degraded", "reporting nodes in DEGRADED health")
        .set(static_cast<double>(snap.nodes_degraded));
    reg.gauge("fleet.nodes_failed", "nodes excluded as FAILED")
        .set(static_cast<double>(snap.nodes_failed));
    reg.gauge("fleet.total_watts", "fleet-wide power estimate")
        .set(snap.total_watts);
    for (const auto& [name, state] : nodes_) {
      const double staleness =
          state.last_seen_s < 0.0 ? -1.0 : now_s - state.last_seen_s;
      reg.gauge("fleet.node." + name + ".staleness_s",
                "seconds since this node last reported (-1 = never)")
          .set(staleness);
    }
  }
  return snap;
}

std::optional<HealthState> FleetEstimator::node_health(const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.last_seen_s < 0.0) {
    return std::nullopt;
  }
  return it->second.estimator.health();
}

std::optional<double> FleetEstimator::node_estimate(const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.last_seen_s < 0.0) {
    return std::nullopt;
  }
  return it->second.last_estimate;
}

std::vector<std::string> FleetEstimator::nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, state] : nodes_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace pwx::core
