// Fuzz harness for the OTF2-lite readers.
//
// Feeds arbitrary bytes through both ingestion paths — the buffered
// read_trace and the zero-copy mapped parser — and enforces the invariants
// the test suite's directed sweeps sample:
//
//   * no crash, no sanitizer finding, on any input;
//   * the only escaping exception is pwx::IoError (typed rejection);
//   * the two paths agree: both accept or both reject, and when they reject
//     the diagnosis (message, byte offset, record index) is identical.
//
// Built under Clang this is a libFuzzer target (LLVMFuzzerTestOneInput);
// under other toolchains fuzz/CMakeLists.txt compiles the same body into a
// standalone replayer that runs every file passed on the command line —
// useful for reproducing libFuzzer corpus findings under GCC+ASan/UBSan.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "trace/format.hpp"
#include "trace/serialize.hpp"

namespace {

struct Rejection {
  std::string what;
  std::int64_t byte_offset;
  std::int64_t record_index;

  bool operator==(const Rejection& other) const = default;
};

/// Run one reader, capturing its rejection (nullopt = accepted).
template <typename Fn>
std::optional<Rejection> outcome(Fn&& read) {
  try {
    read();
    return std::nullopt;
  } catch (const pwx::IoError& e) {
    return Rejection{e.what(), e.byte_offset(), e.record_index()};
  }
  // Anything else escapes: that is the crash the fuzzer is hunting.
}

void check_one_input(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  const auto buffered = outcome([&] {
    std::istringstream in(bytes);
    (void)pwx::trace::read_trace(in);
  });

  // The mapped path's v4 entry point, minus the mmap syscall: the shared
  // parser over an aligned copy of the body, checksum last — byte-identical
  // to what MappedTraceFile::open validates.
  if (size >= 16 &&
      std::memcmp(bytes.data(), pwx::trace::format::kMagicV4, 8) == 0) {
    const auto mapped = outcome([&] {
      const std::string body = bytes.substr(8);  // heap buffer: 8-aligned
      const std::size_t body_size = body.size() - 8;
      const auto parsed = pwx::trace::format::parse_trace_v4(body.data(), body_size);
      pwx::trace::format::verify_checksum_v4(body.data(), body_size,
                                             parsed.event_count);
    });
    if (buffered != mapped) {
      __builtin_trap();  // divergent accept/reject between the two readers
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  check_one_input(data, size);
  return 0;
}

#ifdef PWX_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    check_one_input(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                    bytes.size());
    std::fprintf(stderr, "%s: ok (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
#endif
