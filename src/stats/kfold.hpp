// k-fold cross-validation splitting with random indexing (paper Section IV-B:
// "trained and validated using 10-fold cross validation with random
// indexing").
#pragma once

#include <cstdint>
#include <vector>

namespace pwx::stats {

/// One train/validation split.
struct Fold {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validate;
};

/// Partition [0, n) into k folds after a seeded shuffle. Fold sizes differ by
/// at most one; every index appears in exactly one validation set.
std::vector<Fold> k_fold_splits(std::size_t n, std::size_t k, std::uint64_t seed);

/// Group-aware splits: indices sharing a group label always land in the same
/// fold, so validation is on genuinely unseen groups (used for
/// leave-workload-out evaluation). `groups[i]` labels row i; k must not
/// exceed the number of distinct groups.
std::vector<Fold> grouped_k_fold_splits(const std::vector<std::size_t>& groups,
                                        std::size_t k, std::uint64_t seed);

}  // namespace pwx::stats
