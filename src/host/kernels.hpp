// Real executable workload kernels (roco2-style) for the host data path.
//
// Each kernel runs for approximately the requested wall time and returns how
// much work it did. They are the counterparts of the simulated roco2
// descriptors: compute (ALU chain), sqrt (long-latency unit), memory_read /
// memory_copy (streaming), matmul (blocked DGEMM), busy_wait (spin). Used by
// the host_counters example and the perf smoke tests; results are returned
// so the optimizer cannot delete the work.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pwx::host {

/// Result of running one kernel.
struct KernelResult {
  std::string kernel;
  double elapsed_s = 0;
  double operations = 0;   ///< kernel-specific work unit count
  double checksum = 0;     ///< defeats dead-code elimination
};

/// Dense dependent ALU chain (integer + FP mix).
KernelResult run_compute(double seconds);

/// Serialized square-root chain.
KernelResult run_sqrt(double seconds);

/// Streaming read over a buffer much larger than L3.
KernelResult run_memory_read(double seconds, std::size_t buffer_mib = 64);

/// Streaming copy between two large buffers.
KernelResult run_memory_copy(double seconds, std::size_t buffer_mib = 64);

/// Blocked double-precision matrix multiply.
KernelResult run_matmul(double seconds, std::size_t n = 256);

/// Spin loop (pause-style busy wait).
KernelResult run_busy_wait(double seconds);

/// All kernels by name, for CLI-style selection.
std::vector<std::string> kernel_names();
KernelResult run_kernel(const std::string& name, double seconds);

}  // namespace pwx::host
