// Tests for the execution simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pmc/activity.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace pwx::sim {
namespace {

RunConfig quick_config(double f = 2.4, std::size_t threads = 24,
                       std::uint64_t seed = 1) {
  RunConfig rc;
  rc.frequency_ghz = f;
  rc.threads = threads;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;
  rc.seed = seed;
  return rc;
}

double mean_power(const RunResult& run) {
  double sum = 0;
  for (const IntervalRecord& iv : run.intervals) {
    sum += iv.measured_power_watts;
  }
  return sum / static_cast<double>(run.intervals.size());
}

const workloads::Workload& wl(const char* name) {
  static std::vector<workloads::Workload> all = workloads::all_workloads();
  for (const auto& w : all) {
    if (w.name == name) {
      return w;
    }
  }
  throw Error("unknown workload in test");
}

// ---------------------------------------------------------------- effective cpi

TEST(EffectiveCpi, MemoryPartScalesWithFrequency) {
  workloads::PhaseCharacter c;
  c.base_cpi = 0.5;
  c.mem_ns_per_inst = 1.0;
  EXPECT_DOUBLE_EQ(effective_cpi(c, 1.0), 1.5);
  EXPECT_DOUBLE_EQ(effective_cpi(c, 2.0), 2.5);
  c.mem_ns_per_inst = 0.0;
  EXPECT_DOUBLE_EQ(effective_cpi(c, 2.0), 0.5);  // core-bound: f-independent CPI
}

// ---------------------------------------------------------------- activity generation

TEST(Activity, CycleAccountingIsConsistent) {
  workloads::PhaseCharacter c;  // defaults
  Rng rng(1);
  const auto a = generate_core_activity(c, 2.4, 2.5, 1.0, 1.0, 1, rng);
  // Unhalted cycles ≈ interval * f (default unhalted_frac = 1).
  EXPECT_NEAR(a.cycles, 2.4e9, 0.15e9);
  EXPECT_NEAR(a.ref_cycles / a.cycles, 2.5 / 2.4, 1e-6);
  // IPC matches the CPI model.
  EXPECT_NEAR(a.instructions * effective_cpi(c, 2.4), a.cycles, 1e-3 * a.cycles);
  // Histogram entries never exceed total cycles.
  EXPECT_LE(a.full_issue_cycles, a.cycles);
  EXPECT_LE(a.stall_issue_cycles, a.cycles);
  EXPECT_LE(a.stall_compl_cycles, a.cycles);
}

TEST(Activity, InstructionMixFollowsFractions) {
  workloads::PhaseCharacter c;
  c.frac_load = 0.3;
  c.frac_branch_cn = 0.2;
  c.branch_misp_rate = 0.05;
  Rng rng(2);
  const auto a = generate_core_activity(c, 2.0, 2.5, 1.0, 1.0, 1, rng);
  EXPECT_NEAR(a.load_ins / a.instructions, 0.3, 0.02);
  EXPECT_NEAR(a.branch_cn / a.instructions, 0.2, 0.02);
  EXPECT_NEAR(a.branch_misp / a.branch_cn, 0.05, 0.01);
  EXPECT_LE(a.branch_taken, a.branch_cn);
}

TEST(Activity, SlowdownScalesInstructionsNotCycles) {
  workloads::PhaseCharacter c;
  Rng rng1(3);
  Rng rng2(3);
  const auto full = generate_core_activity(c, 2.4, 2.5, 1.0, 1.0, 1, rng1);
  const auto half = generate_core_activity(c, 2.4, 2.5, 1.0, 0.5, 1, rng2);
  EXPECT_NEAR(half.instructions / full.instructions, 0.5, 1e-9);
  EXPECT_NEAR(half.cycles, full.cycles, 1e-9);
}

TEST(Activity, ContentionRaisesL3MissesWithCoRunners) {
  workloads::PhaseCharacter c;
  c.cache_contention = 1.0;
  c.l3_ld_mpki = 2.0;
  c.variability_cv = 0.0;
  double alone = 0;
  double crowded = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    Rng r1(s);
    Rng r2(s);
    alone += generate_core_activity(c, 2.4, 2.5, 1.0, 1.0, 1, r1).l3_load_miss;
    crowded += generate_core_activity(c, 2.4, 2.5, 1.0, 1.0, 24, r2).l3_load_miss;
  }
  EXPECT_NEAR(crowded / alone, 2.0, 0.1);  // contention = 1 → doubled at 24 cores
}

TEST(Activity, SnoopsRequirePeers) {
  workloads::PhaseCharacter c;
  c.snoop_pki_per_core = 0.1;
  Rng rng(4);
  const auto solo = generate_core_activity(c, 2.4, 2.5, 1.0, 1.0, 1, rng);
  EXPECT_DOUBLE_EQ(solo.snoop_requests, 0.0);
  const auto many = generate_core_activity(c, 2.4, 2.5, 1.0, 1.0, 12, rng);
  EXPECT_GT(many.snoop_requests, 0.0);
}

TEST(Activity, MemStallCyclesGrowWithFrequency) {
  workloads::PhaseCharacter c;
  c.base_cpi = 0.5;
  c.mem_ns_per_inst = 1.0;
  Rng r1(5);
  Rng r2(5);
  const auto slow = generate_core_activity(c, 1.2, 2.5, 1.0, 1.0, 1, r1);
  const auto fast = generate_core_activity(c, 2.6, 2.5, 1.0, 1.0, 1, r2);
  EXPECT_GT(fast.stall_compl_cycles / fast.cycles, slow.stall_compl_cycles / slow.cycles);
}

TEST(Activity, InvalidSlowdownRejected) {
  workloads::PhaseCharacter c;
  Rng rng(6);
  EXPECT_THROW(generate_core_activity(c, 2.4, 2.5, 1.0, 0.0, 1, rng), InvalidArgument);
  EXPECT_THROW(generate_core_activity(c, 2.4, 2.5, 1.0, 1.5, 1, rng), InvalidArgument);
}

// ---------------------------------------------------------------- engine

TEST(Engine, DeterministicForSameSeed) {
  const Engine engine = Engine::haswell_ep();
  const auto a = engine.run(wl("compute"), quick_config(2.4, 8, 77));
  const auto b = engine.run(wl("compute"), quick_config(2.4, 8, 77));
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.intervals[i].measured_power_watts,
                     b.intervals[i].measured_power_watts);
    EXPECT_DOUBLE_EQ(a.intervals[i].counts.instructions,
                     b.intervals[i].counts.instructions);
  }
}

TEST(Engine, DifferentSeedsDiffer) {
  const Engine engine = Engine::haswell_ep();
  const auto a = engine.run(wl("compute"), quick_config(2.4, 8, 1));
  const auto b = engine.run(wl("compute"), quick_config(2.4, 8, 2));
  EXPECT_NE(a.intervals[0].measured_power_watts, b.intervals[0].measured_power_watts);
}

TEST(Engine, PowerEnvelopeMatchesPlatform) {
  const Engine engine = Engine::haswell_ep();
  const double idle = mean_power(engine.run(wl("idle"), quick_config(2.4, 24)));
  const double stress = mean_power(engine.run(wl("addpd"), quick_config(2.6, 24)));
  EXPECT_GT(idle, 40.0);
  EXPECT_LT(idle, 80.0);
  EXPECT_GT(stress, 220.0);
  EXPECT_LT(stress, 340.0);
}

TEST(Engine, PowerMonotoneInThreads) {
  const Engine engine = Engine::haswell_ep();
  double prev = 0.0;
  for (std::size_t threads : {1u, 4u, 12u, 24u}) {
    const double p = mean_power(engine.run(wl("compute"), quick_config(2.4, threads)));
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Engine, PowerMonotoneInFrequency) {
  const Engine engine = Engine::haswell_ep();
  double prev = 0.0;
  for (double f : {1.2, 1.6, 2.0, 2.4, 2.6}) {
    const double p = mean_power(engine.run(wl("compute"), quick_config(f, 24)));
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Engine, VoltageTracksDvfsTable) {
  const Engine engine = Engine::haswell_ep();
  const auto low = engine.run(wl("busy_wait"), quick_config(1.2, 24));
  const auto high = engine.run(wl("busy_wait"), quick_config(2.6, 24));
  EXPECT_NEAR(low.intervals[0].measured_voltage, 0.75, 0.03);
  EXPECT_NEAR(high.intervals[0].measured_voltage, 1.04, 0.03);
}

TEST(Engine, MeasuredPowerTracksTruePower) {
  const Engine engine = Engine::haswell_ep();
  const auto run = engine.run(wl("md"), quick_config());
  for (const IntervalRecord& iv : run.intervals) {
    EXPECT_NEAR(iv.measured_power_watts / iv.true_power_watts, 1.0, 0.05);
  }
}

TEST(Engine, BandwidthCapLimitsMemoryScaling) {
  // memory_read at 24 threads must not deliver 24x the single-thread
  // instruction rate: the socket bandwidth ceiling throttles it.
  const Engine engine = Engine::haswell_ep();
  const auto one = engine.run(wl("memory_read"), quick_config(2.4, 1));
  const auto many = engine.run(wl("memory_read"), quick_config(2.4, 24));
  const double inst_one = one.intervals[0].counts.instructions;
  const double inst_many = many.intervals[0].counts.instructions;
  EXPECT_LT(inst_many / inst_one, 18.0);
}

TEST(Engine, ComputeScalesNearlyLinearly) {
  const Engine engine = Engine::haswell_ep();
  const auto one = engine.run(wl("compute"), quick_config(2.4, 1));
  const auto many = engine.run(wl("compute"), quick_config(2.4, 24));
  const double ratio = many.intervals[0].counts.instructions /
                       one.intervals[0].counts.instructions;
  EXPECT_GT(ratio, 20.0);  // no bandwidth bottleneck for ALU work
}

TEST(Engine, MultiPhaseWorkloadEmitsAllPhases) {
  const Engine engine = Engine::haswell_ep();
  RunConfig rc = quick_config();
  rc.duration_scale = 0.2;
  const auto run = engine.run(wl("md"), rc);
  std::set<std::string> phases;
  for (const IntervalRecord& iv : run.intervals) {
    phases.insert(iv.phase);
  }
  EXPECT_EQ(phases.size(), 2u);
}

TEST(Engine, WallTimeMatchesScaledDuration) {
  const Engine engine = Engine::haswell_ep();
  RunConfig rc = quick_config();
  rc.duration_scale = 0.5;
  const auto run = engine.run(wl("compute"), rc);  // nominal 10 s
  EXPECT_NEAR(run.wall_time_s, 5.0, 0.5);
}

TEST(Engine, ContentVariationSharedAcrossSeedsOfSameConfig) {
  // Two runs with different run seeds but the same (workload, f, threads)
  // draw the same content factor — their power difference is only noise.
  const Engine engine = Engine::haswell_ep();
  const double p1 = mean_power(engine.run(wl("nab"), quick_config(2.4, 24, 1)));
  const double p2 = mean_power(engine.run(wl("nab"), quick_config(2.4, 24, 999)));
  EXPECT_NEAR(p1 / p2, 1.0, 0.03);
}

TEST(Engine, RejectsInvalidConfigs) {
  const Engine engine = Engine::haswell_ep();
  RunConfig rc = quick_config();
  rc.frequency_ghz = 0.4;
  EXPECT_THROW(engine.run(wl("compute"), rc), InvalidArgument);
  rc = quick_config();
  rc.threads = 0;
  EXPECT_THROW(engine.run(wl("compute"), rc), InvalidArgument);
  rc = quick_config();
  rc.threads = 25;
  EXPECT_THROW(engine.run(wl("compute"), rc), InvalidArgument);
  rc = quick_config();
  rc.interval_s = 0.0;
  EXPECT_THROW(engine.run(wl("compute"), rc), InvalidArgument);
}

TEST(Engine, IdleWorkloadHasLowCycleActivity) {
  const Engine engine = Engine::haswell_ep();
  const auto run = engine.run(wl("idle"), quick_config(2.4, 24));
  const auto& counts = run.intervals[0].counts;
  // Unhalted fraction ~2%: cycles far below 24 cores * f * interval.
  EXPECT_LT(counts.cycles, 0.1 * 24 * 2.4e9 * 0.25);
}

class EngineFrequencySweep : public ::testing::TestWithParam<double> {};

TEST_P(EngineFrequencySweep, MemoryBoundWorkloadGainsLittleFromFrequency) {
  const Engine engine = Engine::haswell_ep();
  const double f = GetParam();
  const auto run = engine.run(wl("memory_read"), quick_config(f, 12));
  const auto& counts = run.intervals[0].counts;
  const double inst_rate = counts.instructions / 0.25;
  // Instruction rate is bandwidth-capped: roughly flat across frequency.
  EXPECT_GT(inst_rate, 2e9);
  EXPECT_LT(inst_rate, 3e10);
}

INSTANTIATE_TEST_SUITE_P(Frequencies, EngineFrequencySweep,
                         ::testing::Values(1.2, 1.6, 2.0, 2.4, 2.6));

}  // namespace
}  // namespace pwx::sim
