// pwx-fleetd — multi-process fleet aggregation over the shard-delta wire
// format (fleet/delta.hpp).
//
// Three modes, together demonstrating (and smoke-testing) that aggregation
// across process boundaries is bit-identical to a single estimator:
//
//   Leaf:      pwx-fleetd --leaf I --leaves L [--shards S] [--nodes N]
//                         [--rounds R] --spool DIR
//     Runs a FleetEstimator over this leaf's slice of an N-node simulated
//     fleet — the slice the hash partition assigns it: a node belongs to
//     leaf I iff (name_hash(name) % (L*S)) / S == I, the same rule
//     fleet::FleetTree uses for its groups. Every round it batch-ingests
//     its nodes' samples and atomically publishes its encoded delta frame
//     to DIR/leaf-<I>.pwxd (write temp + rename, so the aggregator never
//     reads a torn frame).
//
//   Aggregate: pwx-fleetd --aggregate --spool DIR [--once] [--interval-s X]
//     Polls DIR for *.pwxd frames, decodes + validates each (corrupt frames
//     are reported with their byte offset; exit 3 under --once, matching
//     the pwx-trace-dump corruption contract), merges them with
//     DeltaMerger, and emits one {"event":"fleet",...} JSONL line per poll
//     with the merged snapshot and its FNV-1a semantic digest.
//
//   Flat:      pwx-fleetd --flat --leaves L [--shards S] [--nodes N]
//                         [--rounds R]
//     The reference: one FleetEstimator with L*S shards ingesting the whole
//     fleet, emitting the same JSONL line. Its digest must equal the
//     aggregator's over the same simulated rounds — the smoke test pins the
//     equality byte-for-byte.
//
// The simulated fleet is a pure function of (node index, round): every mode
// regenerates identical per-node sample streams with no shared state, which
// is exactly the situation of real leaf daemons watching disjoint node
// sets. Streams include deterministic fault injection (NaN counts) and
// nodes that stop reporting (staleness) so the merged snapshot exercises
// degraded/failed/stale accounting, not just happy-path sums.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"
#include "fleet/delta.hpp"

namespace {

using namespace pwx;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --leaf I --leaves L --spool DIR [--shards S] [--nodes N]\n"
               "          [--rounds R]\n"
               "       %s --aggregate --spool DIR [--once] [--interval-s X]\n"
               "       %s --flat --leaves L [--shards S] [--nodes N] [--rounds R]\n",
               argv0, argv0, argv0);
  return 2;
}

// A small synthetic-trained model (the daemon serves the estimator; which
// model it serves is irrelevant to the aggregation contract). Deterministic,
// so every process builds the bit-identical model.
core::PowerModel fleet_model() {
  const std::vector<pmc::Preset> events{
      pmc::Preset::TOT_INS, pmc::Preset::L2_TCM, pmc::Preset::BR_MSP,
      pmc::Preset::RES_STL, pmc::Preset::FP_INS, pmc::Preset::L3_TCM,
  };
  Rng rng(0xF1EE7D);
  acquire::Dataset ds;
  for (std::size_t i = 0; i < 64; ++i) {
    acquire::DataRow row;
    row.workload = "synthetic";
    row.phase = "p" + std::to_string(i);
    row.frequency_ghz = 2.0 + 0.2 * static_cast<double>(i % 4);
    row.avg_voltage = 0.9 + 0.05 * static_cast<double>(i % 3);
    row.elapsed_s = 1.0;
    double power = 60.0;
    for (std::size_t e = 0; e < events.size(); ++e) {
      const double rate = (1.0 + rng.uniform()) * 1e8 * static_cast<double>(e + 1);
      row.counter_rates[events[e]] = rate;
      power += rate * 1e-8 * (0.5 + 0.1 * static_cast<double>(e));
    }
    row.avg_power_watts = power + rng.uniform();
    ds.append(row);
  }
  core::FeatureSpec spec;
  spec.events = events;
  return core::train_model(ds, spec);
}

// The simulated fleet: node `n`'s sample at `round` is a pure function of
// (n, round). Some nodes inject NaN counts (degraded health), some stop
// reporting after round 0 (staleness), some never report at all.
bool node_reports(std::size_t n, std::size_t round) {
  if (n % 10 == 3) {
    return false;  // interned but silent forever
  }
  if (n % 10 == 7) {
    return round == 0;  // goes stale after its first report
  }
  return true;
}

core::CounterSample sample_for(const core::PowerModel& model, std::size_t n,
                               std::size_t round) {
  core::CounterSample sample;
  sample.elapsed_s = 0.25;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.95 + 0.0001 * static_cast<double>(n % 512);
  double scale = 0.5 + 0.001 * static_cast<double>(n % 1024) +
                 0.01 * static_cast<double>(round);
  const bool faulty = (n * 7 + round) % 13 == 0;
  for (pmc::Preset p : model.spec().events) {
    sample.counts[p] =
        faulty ? std::numeric_limits<double>::quiet_NaN() : 2.5e7 * scale;
    scale *= 1.7;
  }
  return sample;
}

std::string digest_hex(const core::FleetSnapshot& snap) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(core::snapshot_digest(snap)));
  return std::string(buf);
}

void emit_fleet_line(const core::FleetSnapshot& snap, double t_s,
                     std::size_t leaves_present, std::size_t leaf_count) {
  Json line;
  line["event"] = "fleet";
  line["t_s"] = t_s;
  line["leaves"] = leaves_present;
  line["leaf_count"] = leaf_count;
  line["nodes_reporting"] = snap.nodes_reporting;
  line["nodes_stale"] = snap.nodes_stale;
  line["nodes_degraded"] = snap.nodes_degraded;
  line["nodes_failed"] = snap.nodes_failed;
  line["nodes_active"] = snap.nodes_active;
  line["nodes_interned"] = snap.nodes_interned;
  line["total_watts"] = snap.total_watts;
  if (!std::isnan(snap.min_node_watts)) {
    line["min_node_watts"] = snap.min_node_watts;
    line["max_node_watts"] = snap.max_node_watts;
  }
  line["digest"] = digest_hex(snap);
  std::cout << line.dump(-1) << "\n";
  std::cout.flush();
}

// Run the simulated fleet through one estimator covering leaves
// [leaf_begin, leaf_end) of an L-leaf partition. Leaf mode passes one leaf
// and publishes a frame per round; flat mode passes [0, L) and emits the
// reference snapshot line per round.
int run_estimator(std::uint32_t leaf_begin, std::uint32_t leaf_end,
                  std::uint32_t leaf_count, std::size_t shards,
                  std::size_t node_count, std::size_t rounds,
                  const std::string& spool) {
  const core::PowerModel model = fleet_model();
  core::FleetOptions options;
  // One leaf runs `shards` shards; the flat reference runs the whole
  // partition's L*S so its shard space matches the merged leaves exactly.
  options.shard_count = shards * (leaf_end - leaf_begin);
  core::FleetEstimator fleet(model, /*smoothing=*/0.0,
                             /*staleness_horizon_s=*/0.6, options);
  const std::uint64_t total_shards =
      static_cast<std::uint64_t>(shards) * leaf_count;

  // Intern this estimator's slice of the namespace (every provisioned node,
  // reporting or not), in global node order.
  struct SimNode {
    std::size_t index;
    core::NodeId id;
  };
  std::vector<SimNode> nodes;
  for (std::size_t n = 0; n < node_count; ++n) {
    const std::string name = "node" + std::to_string(n);
    const std::uint32_t leaf = static_cast<std::uint32_t>(
        (core::FleetEstimator::name_hash(name) % total_shards) / shards);
    if (leaf >= leaf_begin && leaf < leaf_end) {
      nodes.push_back(SimNode{n, fleet.intern(name)});
    }
  }

  std::vector<core::NodeSample> batch;
  core::DenseSample dense = fleet.layout().make_sample();
  for (std::size_t round = 0; round < rounds; ++round) {
    const double now_s = 0.25 * static_cast<double>(round + 1);
    batch.clear();
    for (const SimNode& node : nodes) {
      if (!node_reports(node.index, round)) {
        continue;
      }
      fleet.layout().to_dense_guarded(sample_for(model, node.index, round),
                                      dense);
      batch.push_back(core::NodeSample{node.id, now_s, dense});
    }
    fleet.ingest_batch(batch);

    if (!spool.empty()) {
      // Atomic publish: the aggregator either sees the previous complete
      // frame or this one, never a torn write.
      const fleet::FleetDelta delta = fleet::make_delta(
          fleet, leaf_begin, leaf_count, now_s, /*sequence=*/round + 1);
      const std::string encoded = fleet::encode_delta(delta);
      const std::filesystem::path path =
          std::filesystem::path(spool) /
          ("leaf-" + std::to_string(leaf_begin) + ".pwxd");
      const std::filesystem::path tmp = path.string() + ".tmp";
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", tmp.string().c_str());
          return 1;
        }
        out.write(encoded.data(),
                  static_cast<std::streamsize>(encoded.size()));
      }
      std::filesystem::rename(tmp, path);
    } else {
      emit_fleet_line(fleet.snapshot(now_s), now_s, leaf_count, leaf_count);
    }
  }
  if (!spool.empty()) {
    std::fprintf(stderr, "leaf %u published %zu rounds to %s\n", leaf_begin,
                 rounds, spool.c_str());
  }
  return 0;
}

int run_aggregate(const std::string& spool, bool once, double interval_s) {
  while (true) {
    fleet::DeltaMerger merger;
    std::vector<std::filesystem::path> frames;
    for (const auto& entry : std::filesystem::directory_iterator(spool)) {
      if (entry.path().extension() == ".pwxd") {
        frames.push_back(entry.path());
      }
    }
    std::sort(frames.begin(), frames.end());
    for (const std::filesystem::path& path : frames) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream bytes;
      bytes << in.rdbuf();
      const std::string frame = bytes.str();
      try {
        merger.add(fleet::decode_delta(frame));
      } catch (const IoError& e) {
        std::fprintf(stderr, "rejected %s: %s\n", path.string().c_str(),
                     e.what());
        if (once) {
          return 3;  // the trace-tool corruption exit code
        }
      }
    }
    if (merger.leaves_present() > 0) {
      emit_fleet_line(merger.merge(), merger.now_s(), merger.leaves_present(),
                      merger.leaf_count());
    } else {
      std::fprintf(stderr, "no frames in %s yet\n", spool.c_str());
    }
    if (once) {
      return merger.complete() ? 0 : (merger.leaves_present() > 0 ? 0 : 1);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::max(0.05, interval_s)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t leaf_index = 0;
  std::uint32_t leaf_count = 0;
  bool leaf_mode = false;
  bool flat_mode = false;
  bool aggregate_mode = false;
  bool once = false;
  std::size_t shards = 8;
  std::size_t node_count = 64;
  std::size_t rounds = 3;
  double interval_s = 1.0;
  std::string spool;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--leaf") {
      leaf_mode = true;
      leaf_index = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--leaves") {
      leaf_count = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--flat") {
      flat_mode = true;
    } else if (arg == "--aggregate") {
      aggregate_mode = true;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--shards") {
      shards = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--nodes") {
      node_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      rounds = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--interval-s") {
      interval_s = std::strtod(next(), nullptr);
    } else if (arg == "--spool") {
      spool = next();
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (aggregate_mode) {
      if (spool.empty()) {
        return usage(argv[0]);
      }
      return run_aggregate(spool, once, interval_s);
    }
    if (flat_mode) {
      if (leaf_count == 0 || shards == 0) {
        return usage(argv[0]);
      }
      return run_estimator(0, leaf_count, leaf_count, shards, node_count,
                           rounds, "");
    }
    if (leaf_mode) {
      if (leaf_count == 0 || leaf_index >= leaf_count || shards == 0 ||
          spool.empty()) {
        return usage(argv[0]);
      }
      std::filesystem::create_directories(spool);
      return run_estimator(leaf_index, leaf_index + 1, leaf_count, shards,
                           node_count, rounds, spool);
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
