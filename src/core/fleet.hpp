// Fleet-scale power estimation.
//
// The paper's outlook asks for "the adaptation of the model to a larger
// scale such that it can be applied to peta- or exa-scale systems instead of
// individual nodes". The FleetEstimator applies one trained node model to
// counter streams from many nodes and maintains the aggregate: per-node
// estimates, the fleet total, and staleness bookkeeping so that nodes whose
// telemetry stopped do not silently freeze the total.
//
// The node model transfers across machines of the same type because it is a
// function of architecture-level rates (Equation 1), not of one part's
// calibration — `integration_test` and the cluster example quantify the
// transfer error across simulated part variation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/model.hpp"

namespace pwx::core {

/// Aggregated view of the fleet at a point in time.
struct FleetSnapshot {
  double total_watts = 0.0;          ///< sum over nodes with fresh estimates
  std::size_t nodes_reporting = 0;   ///< nodes included in the total
  std::size_t nodes_stale = 0;       ///< nodes beyond the staleness horizon
  std::size_t nodes_degraded = 0;    ///< reporting nodes on held/repaired data
  std::size_t nodes_failed = 0;      ///< nodes whose estimator gave up (excluded)
  double max_node_watts = 0.0;
  double min_node_watts = 0.0;
};

/// Applies a per-node power model across a fleet of nodes.
class FleetEstimator {
public:
  /// `staleness_horizon_s`: a node whose last sample is older than this (in
  /// fleet time) is excluded from totals and counted as stale.
  explicit FleetEstimator(PowerModel node_model, double smoothing = 0.0,
                          double staleness_horizon_s = 10.0);

  /// Ingest one node's sample at fleet time `now_s`; returns the node's
  /// power estimate. Unknown node names are registered on first use.
  /// Telemetry faults never throw: invalid samples go through the node
  /// estimator's guarded path, which holds the last good estimate and
  /// degrades the node's health instead.
  double ingest(const std::string& node, const CounterSample& sample, double now_s);

  /// Aggregate over all known nodes at fleet time `now_s`. Nodes whose
  /// estimator reports FAILED are excluded from the total (counted in
  /// nodes_failed); DEGRADED nodes stay included but are counted.
  FleetSnapshot snapshot(double now_s) const;

  /// Last estimate of one node (nullopt when the node never reported).
  std::optional<double> node_estimate(const std::string& node) const;

  /// Health of one node's estimate stream (nullopt when never reported).
  std::optional<HealthState> node_health(const std::string& node) const;

  /// Registered node names (sorted).
  std::vector<std::string> nodes() const;

  const PowerModel& model() const { return model_; }

private:
  struct NodeState {
    OnlineEstimator estimator;
    double last_estimate = 0.0;
    double last_seen_s = -1.0;
  };

  PowerModel model_;
  double smoothing_;
  double staleness_horizon_s_;
  std::map<std::string, NodeState> nodes_;
};

}  // namespace pwx::core
