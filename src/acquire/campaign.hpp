// Acquisition campaigns: the paper's data-acquisition + post-processing
// steps end to end.
//
// For every (workload, frequency, thread-count) configuration, the campaign
// schedules the requested PAPI presets into hardware-feasible event groups
// (pmc::schedule_events), executes one simulator run per group — each with
// its own seed, so runs genuinely differ — traces each run through the
// standard plugin set, post-processes traces into phase profiles, merges the
// profiles across runs, and appends the merged rows to a Dataset.
//
// Campaigns are embarrassingly parallel over runs and are parallelized with
// OpenMP when available.
//
// Acquisition is failure-aware: every run's phase profiles are validated
// (phase set, finite/positive power/voltage/time, sane counter rates), and a
// run that fails — or that a configured fault::FaultPlan flags — is
// re-executed with a derived seed under the campaign's FailurePolicy. A
// configuration whose runs keep failing is quarantined rather than merged,
// and everything that happened is surfaced in the Dataset's DataQuality.
#pragma once

#include <cstdint>
#include <vector>

#include "acquire/dataset.hpp"
#include "pmc/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/profile_campaign.hpp"
#include "workloads/registry.hpp"

namespace pwx::fault {
struct FaultPlan;
}  // namespace pwx::fault

namespace pwx::acquire {

/// What to do when a run fails validation or is flagged by fault injection.
enum class FailurePolicy {
  Retry,  ///< re-execute with a derived seed, quarantine after max_attempts
  Skip,   ///< quarantine the configuration immediately (no re-execution)
  Abort,  ///< throw out of run_campaign on the first permanent failure
};

/// Campaign-level failure handling knobs.
struct CampaignResilience {
  FailurePolicy policy = FailurePolicy::Retry;
  /// Total executions allowed per event-group run (first try + retries).
  std::size_t max_attempts = 3;
};

/// What to acquire.
struct CampaignConfig {
  std::vector<workloads::Workload> workloads;
  std::vector<double> frequencies_ghz = {2.4};
  /// Thread counts swept for thread-scalable (roco2) workloads; workloads
  /// with thread_scalable == false always run with all 24 threads.
  std::vector<std::size_t> scalable_thread_counts = {1, 2, 4, 6, 8, 12, 16, 20, 24};
  std::size_t fixed_thread_count = 24;
  std::vector<pmc::Preset> events;     ///< presets to record (multiplexed)
  pmc::CounterBudget budget;           ///< per-run hardware constraint
  double interval_s = 0.25;            ///< metric sampling interval
  double duration_scale = 0.4;         ///< scales workloads' nominal durations
  std::uint64_t seed = 0xACD1;         ///< campaign-level seed
  CampaignResilience resilience;       ///< failure handling
  /// Optional fault schedule (not owned; must outlive the campaign). When
  /// set, every run is perturbed per the plan before post-processing —
  /// the chaos-testing hook bench/robustness_campaign drives.
  const fault::FaultPlan* fault_plan = nullptr;
};

/// Execute a campaign on an engine. The returned Dataset carries a
/// DataQuality report (Dataset::quality) describing rejected runs, retries,
/// quarantined configurations, injected faults, and sanitization drops.
/// Throws only under FailurePolicy::Abort (or on invalid configuration).
Dataset run_campaign(const sim::Engine& engine, const CampaignConfig& config);

/// Ingestion knobs for ingest_trace_files: besides the batch-campaign
/// parallel/merge switches this carries the zero-copy controls —
/// `mmap = true` serves v4 trace files straight out of read-only memory
/// mappings (v2/v3 fall back to the buffered reader transparently), and
/// `verify_checksum = false` defers the integrity pass on the mapped path
/// for latency-critical re-reads of known-good files.
using IngestOptions = trace::ProfileCampaignOptions;

/// Post-processing without re-acquisition: reduce already-recorded trace
/// files to a regression Dataset in one call. Every file is read and phase-
/// profiled (OpenMP-parallel across files per `options`, zero-copy when
/// `options.mmap` is set), same-key profiles are merged across runs, rows
/// are sanitized, and the sanitize report lands in the Dataset's
/// DataQuality. The result is bit-identical to a serial read/profile/merge
/// loop over the same paths — mapped or buffered. Suites are resolved from
/// the workload registry (unknown workload names default to Suite::Roco2).
Dataset ingest_trace_files(const std::vector<std::string>& paths,
                           IngestOptions options = {});

/// The paper's standard acquisition: all workloads, all 54 Haswell-EP
/// presets, at the given frequencies. `seed` defaults to the fixed value the
/// reproduction benches share so every bench sees the same "measurement".
CampaignConfig standard_campaign_config(std::vector<double> frequencies_ghz,
                                        std::uint64_t seed = 0xACD1);

/// Cached standard datasets (acquired once per process, then shared):
/// the selection dataset (2.4 GHz only) and the full training dataset
/// (all five paper frequencies). Both record all 54 presets.
const Dataset& standard_selection_dataset();
const Dataset& standard_training_dataset();

}  // namespace pwx::acquire
