// Ridge (L2-regularized) regression.
//
// The paper's CA_SNP dilemma — an informative event that cannot be selected
// because it is collinear with the chosen set and no transformation exists —
// is precisely the failure mode ridge regression addresses: shrinkage keeps
// the coefficients of correlated predictors finite and stable at the cost of
// a small bias. The reproduction offers it as an extension (paper Section VI
// future work: "different statistical algorithms"); `ablation_ridge`
// evaluates it on the full 54-counter set.
//
// Predictors are standardized internally (the penalty is not applied to the
// intercept), matching the conventional formulation; coefficients are
// reported in the original scale.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::regress {

/// Result of a ridge fit.
struct RidgeResult {
  std::vector<double> beta;   ///< coefficients (intercept first)
  double lambda = 0.0;        ///< the penalty actually used
  double r_squared = 0.0;     ///< in-sample, centered
  std::vector<double> fitted;
  std::vector<double> residuals;
  double effective_dof = 0.0; ///< tr(H) of the ridge hat matrix (incl. intercept)
  double gcv = 0.0;           ///< generalized cross-validation score

  /// Predict for a design with the fit's column layout (no intercept col).
  std::vector<double> predict(const la::Matrix& x) const;
};

/// Fit y ~ x with penalty `lambda` >= 0 on the standardized coefficients.
/// lambda == 0 reproduces OLS (up to conditioning).
RidgeResult fit_ridge(const la::Matrix& x, std::span<const double> y, double lambda);

/// Fit a grid of penalties and return the fit minimizing the GCV score
/// (Golub–Heath–Wahba). `lambdas` defaults to a log grid 1e-4..1e2.
RidgeResult fit_ridge_gcv(const la::Matrix& x, std::span<const double> y,
                          const std::vector<double>& lambdas = {});

}  // namespace pwx::regress
