// Unit tests for the common module: RNG, strings, CSV, JSON, tables, errors.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace pwx {
namespace {

// ---------------------------------------------------------------- error

TEST(Error, RequireThrowsInvalidArgumentWithMessage) {
  try {
    PWX_REQUIRE(1 == 2, "got ", 42);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("got 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckThrowsPwxError) {
  EXPECT_THROW(PWX_CHECK(false, "boom"), Error);
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a() == b());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(99);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0;
  double sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMeanMatchesRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.lognormal_mean_cv(5.0, 0.2);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalZeroCvIsExact) {
  Rng rng(13);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(3.5, 0.0), 3.5);
}

TEST(Rng, LognormalIsAlwaysPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.lognormal_mean_cv(1.0, 0.5), 0.0);
  }
}

TEST(Rng, LognormalRejectsBadArguments) {
  Rng rng(17);
  EXPECT_THROW(rng.lognormal_mean_cv(0.0, 0.1), InvalidArgument);
  EXPECT_THROW(rng.lognormal_mean_cv(1.0, -0.1), InvalidArgument);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(5);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (parent() == child());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(21);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationOfZeroIsEmpty) {
  Rng rng(21);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, SplitMix64KnownVector) {
  // Reference value from the splitmix64 reference implementation with
  // state = 0: first output is 0xE220A8397B1DCDAF.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
}

// ---------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("PAPI_TOT_CYC", "PAPI_"));
  EXPECT_FALSE(starts_with("TOT_CYC", "PAPI_"));
  EXPECT_FALSE(starts_with("PA", "PAPI_"));
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC123"), "abc123"); }

TEST(Strings, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

// ---------------------------------------------------------------- csv

TEST(Csv, PlainFieldsUnquoted) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, FieldsWithSeparatorAreQuoted) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a,b", "c"});
  EXPECT_EQ(os.str(), "\"a,b\",c\n");
}

TEST(Csv, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\"", ','), "\"say \"\"hi\"\"\"");
}

TEST(Csv, NewlinesForceQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb", ','), "\"a\nb\"");
}

// ---------------------------------------------------------------- json

TEST(Json, RoundTripScalars) {
  EXPECT_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(Json, RoundTripNestedDocument) {
  const std::string doc = R"({"a": [1, 2.5, {"b": "x"}], "c": null, "d": true})";
  const Json parsed = Json::parse(doc);
  const Json reparsed = Json::parse(parsed.dump());
  EXPECT_EQ(reparsed.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_EQ(reparsed.at("a").as_array()[2].at("b").as_string(), "x");
  EXPECT_TRUE(reparsed.at("c").is_null());
  EXPECT_TRUE(reparsed.at("d").as_bool());
}

TEST(Json, CompactDumpHasNoNewlines) {
  Json j;
  j["x"] = 1;
  j["y"] = "z";
  EXPECT_EQ(j.dump(-1).find('\n'), std::string::npos);
}

TEST(Json, ObjectKeysAreSorted) {
  Json j;
  j["zeta"] = 1;
  j["alpha"] = 2;
  const std::string out = j.dump(-1);
  EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  const Json j = Json::parse("\"\\u00e9\"");  // é
  EXPECT_EQ(j.as_string(), "\xc3\xa9");
}

TEST(Json, ParseErrorsThrowIoError) {
  EXPECT_THROW(Json::parse("{"), IoError);
  EXPECT_THROW(Json::parse("[1,]2"), IoError);
  EXPECT_THROW(Json::parse("tru"), IoError);
  EXPECT_THROW(Json::parse("\"unterminated"), IoError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), IoError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("[1]");
  EXPECT_THROW(j.as_object(), Error);
  EXPECT_THROW(j.as_number(), Error);
  EXPECT_THROW(j.at("x"), Error);
}

TEST(Json, FindReturnsNullForMissingKey) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_EQ(j.find("b"), nullptr);
  EXPECT_NE(j.find("a"), nullptr);
}

TEST(Json, NumbersSurviveRoundTripExactly) {
  for (double v : {0.1, 1e-300, 1e300, -123456.789, 3.141592653589793}) {
    Json j(v);
    EXPECT_EQ(Json::parse(j.dump()).as_number(), v) << v;
  }
}

TEST(Json, NonFiniteNumbersRejectedOnDump) {
  Json j(std::nan(""));
  EXPECT_THROW(j.dump(), Error);
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // All lines equal width up to trailing spaces being present.
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), InvalidArgument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), InvalidArgument);
}

// ---------------------------------------------------------------- units

TEST(Units, FrequencyConversions) {
  EXPECT_DOUBLE_EQ(units::mhz_to_ghz(2400.0), 2.4);
  EXPECT_DOUBLE_EQ(units::ghz_to_hz(1.2), 1.2e9);
  EXPECT_DOUBLE_EQ(units::hz_to_ghz(2.6e9), 2.6);
}

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(units::ns_to_s(1500000000ull), 1.5);
  EXPECT_EQ(units::s_to_ns(2.5), 2500000000ull);
}

// ---------------------------------------------------------------- log

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  PWX_LOG_DEBUG("this must not crash even when filtered");
  set_log_level(before);
}

// Capture log output into a string, restoring global state on destruction.
class LogCapture {
public:
  LogCapture() : level_(log_level()), format_(log_format()) {
    set_log_stream(&stream_);
  }
  ~LogCapture() {
    set_log_stream(nullptr);
    set_log_format(format_);
    set_log_level(level_);
  }
  std::string text() const { return stream_.str(); }

private:
  std::ostringstream stream_;
  LogLevel level_;
  LogFormat format_;
};

TEST(Log, MessagesBelowThresholdAreDiscarded) {
  LogCapture capture;
  set_log_level(LogLevel::Warn);
  log_message(LogLevel::Debug, "dropped");
  log_message(LogLevel::Info, "dropped too");
  log_message(LogLevel::Warn, "kept");
  log_message(LogLevel::Error, "kept too");
  EXPECT_EQ(capture.text().find("dropped"), std::string::npos);
  EXPECT_NE(capture.text().find("kept"), std::string::npos);
  EXPECT_NE(capture.text().find("kept too"), std::string::npos);
}

TEST(Log, TextModeAppendsFields) {
  LogCapture capture;
  set_log_level(LogLevel::Info);
  set_log_format(LogFormat::Text);
  log_message(LogLevel::Info, "campaign done",
              {{"rows", "42"}, {"verdict", "clean"}});
  EXPECT_NE(capture.text().find("[pwx INFO ]"), std::string::npos);
  EXPECT_NE(capture.text().find("campaign done"), std::string::npos);
  EXPECT_NE(capture.text().find("rows=42"), std::string::npos);
  EXPECT_NE(capture.text().find("verdict=clean"), std::string::npos);
}

TEST(Log, JsonModeEmitsOneParseableObjectPerLine) {
  LogCapture capture;
  set_log_level(LogLevel::Info);
  set_log_format(LogFormat::Json);
  log_message(LogLevel::Info, "flush \"quoted\"", {{"seq", "3"}});
  log_message(LogLevel::Warn, "second");

  std::istringstream lines(capture.text());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const Json first = Json::parse(line);
  EXPECT_EQ(first.at("level").as_string(), "info");
  EXPECT_EQ(first.at("msg").as_string(), "flush \"quoted\"");
  EXPECT_EQ(first.at("seq").as_string(), "3");
  EXPECT_FALSE(first.at("ts").as_string().empty());
  EXPECT_FALSE(first.at("thread").as_string().empty());
  // ISO 8601 UTC with millisecond precision: 2026-01-02T03:04:05.678Z.
  const std::string& ts = first.at("ts").as_string();
  EXPECT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');

  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(Json::parse(line).at("level").as_string(), "warn");
  EXPECT_FALSE(std::getline(lines, line));  // exactly two lines
}

}  // namespace
}  // namespace pwx
