file(REMOVE_RECURSE
  "CMakeFiles/ablation_lowo.dir/ablation_lowo.cpp.o"
  "CMakeFiles/ablation_lowo.dir/ablation_lowo.cpp.o.d"
  "ablation_lowo"
  "ablation_lowo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lowo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
