file(REMOVE_RECURSE
  "libpwx_common.a"
)
