#include "core/epoch.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace pwx::core {

namespace {

struct EpochMetrics {
  obs::Counter& publishes;
  obs::Counter& stale_rejected;
  obs::Gauge& generation;
};

EpochMetrics& epoch_metrics() {
  static EpochMetrics m{
      obs::registry().counter("epoch.publishes", "model publications (hot swaps)"),
      obs::registry().counter("epoch.stale_rejected",
                              "guarded publishes rejected as stale"),
      obs::registry().gauge("epoch.generation", "latest published model generation"),
  };
  return m;
}

}  // namespace

LayoutEpoch::LayoutEpoch(PowerModel model) { publish(std::move(model)); }

std::shared_ptr<const PublishedModel> LayoutEpoch::current() const {
  std::lock_guard lock(mutex_);
  return current_;
}

std::shared_ptr<const PublishedModel> LayoutEpoch::at(std::uint64_t generation) const {
  std::lock_guard lock(mutex_);
  const std::shared_ptr<const PublishedModel>& slot = history_[generation % kHistory];
  if (slot != nullptr && slot->generation == generation) {
    return slot;
  }
  return nullptr;
}

std::uint64_t LayoutEpoch::publish_locked(PowerModel model) {
  PWX_SPAN("epoch.publish");
  const std::uint64_t next = generation_.load(std::memory_order_relaxed) + 1;
  auto published = std::make_shared<const PublishedModel>(std::move(model), next);
  current_ = published;
  history_[next % kHistory] = std::move(published);
  // Release-store last: a reader that observes the new generation will find
  // the matching publication behind current().
  generation_.store(next, std::memory_order_release);
  obs::span_attr("generation", next);
  if (obs::enabled()) {
    EpochMetrics& m = epoch_metrics();
    m.publishes.add_unguarded(1);
    m.generation.set_unguarded(static_cast<double>(next));
  }
  return next;
}

std::uint64_t LayoutEpoch::publish(PowerModel model) {
  std::lock_guard lock(mutex_);
  return publish_locked(std::move(model));
}

std::optional<std::uint64_t> LayoutEpoch::try_publish(
    PowerModel model, std::uint64_t expected_generation) {
  std::lock_guard lock(mutex_);
  if (generation_.load(std::memory_order_relaxed) != expected_generation) {
    epoch_metrics().stale_rejected.add();
    return std::nullopt;
  }
  return publish_locked(std::move(model));
}

}  // namespace pwx::core
