#include "obs/export.hpp"

#include <cmath>
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"

namespace pwx::obs {

namespace {

/// Shortest-faithful number formatting shared by the text exporters
/// (integers without a fraction, everything else round-trippable) — the same
/// convention common/json uses, so the formats agree on every value.
std::string format_number(double n) {
  char buf[40];
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", n);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", n);
  }
  return buf;
}

bool prometheus_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

Json histogram_to_json(const HistogramSnapshot& hist) {
  Json::Object out;
  out["count"] = Json(hist.count);
  out["sum"] = Json(hist.sum);
  out["p50"] = Json(hist.quantile(0.50));
  out["p95"] = Json(hist.quantile(0.95));
  out["p99"] = Json(hist.quantile(0.99));
  Json::Array buckets;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    cumulative += hist.counts[b];
    // Only non-empty buckets are exported; the full bound grid would bloat
    // every event line with dozens of zero entries.
    if (hist.counts[b] == 0) {
      continue;
    }
    Json::Object bucket;
    bucket["le"] = b < hist.bounds.size() ? Json(hist.bounds[b]) : Json("+Inf");
    bucket["count"] = Json(cumulative);
    buckets.push_back(Json(std::move(bucket)));
  }
  out["buckets"] = Json(std::move(buckets));
  // Trace exemplars are only attached when an observation ran inside a
  // sampled trace — omitted entirely otherwise, so tracing-off output (and
  // its goldens) is unchanged.
  if (!hist.exemplars.empty()) {
    Json::Array exemplars;
    for (const HistogramExemplar& exemplar : hist.exemplars) {
      Json::Object entry;
      entry["le"] = exemplar.bucket < hist.bounds.size()
                        ? Json(hist.bounds[exemplar.bucket])
                        : Json("+Inf");
      entry["value"] = Json(exemplar.value);
      entry["trace"] = Json(format_span_id(exemplar.trace_id));
      exemplars.push_back(Json(std::move(entry)));
    }
    out["exemplars"] = Json(std::move(exemplars));
  }
  return Json(std::move(out));
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "pwx_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    out += prometheus_char_ok(c) ? c : '_';
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricValue& value : snapshot.values) {
    std::string name = prometheus_name(value.name);
    if (value.kind == MetricKind::Counter) {
      name += "_total";
    }
    if (!value.help.empty()) {
      out += "# HELP " + name + ' ' + value.help + '\n';
    }
    switch (value.kind) {
      case MetricKind::Counter:
        out += "# TYPE " + name + " counter\n";
        out += name + ' ' + format_number(static_cast<double>(value.counter)) + '\n';
        break;
      case MetricKind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ' + format_number(value.gauge) + '\n';
        break;
      case MetricKind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        const HistogramSnapshot& hist = value.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < hist.counts.size(); ++b) {
          cumulative += hist.counts[b];
          // Prometheus buckets are cumulative; skip leading empty buckets to
          // keep the exposition readable, but always emit +Inf.
          if (cumulative == 0 && b + 1 < hist.counts.size()) {
            continue;
          }
          const std::string le =
              b < hist.bounds.size() ? format_number(hist.bounds[b]) : "+Inf";
          out += name + "_bucket{le=\"" + le + "\"} " +
                 format_number(static_cast<double>(cumulative)) + '\n';
        }
        out += name + "_sum " + format_number(hist.sum) + '\n';
        out += name + "_count " + format_number(static_cast<double>(hist.count)) + '\n';
        break;
      }
    }
  }
  return out;
}

Json to_json(const MetricsSnapshot& snapshot) {
  Json::Object counters;
  Json::Object gauges;
  Json::Object histograms;
  for (const MetricValue& value : snapshot.values) {
    switch (value.kind) {
      case MetricKind::Counter:
        counters[value.name] = Json(value.counter);
        break;
      case MetricKind::Gauge:
        gauges[value.name] = Json(value.gauge);
        break;
      case MetricKind::Histogram:
        histograms[value.name] = histogram_to_json(value.histogram);
        break;
    }
  }
  Json::Object out;
  out["counters"] = Json(std::move(counters));
  out["gauges"] = Json(std::move(gauges));
  out["histograms"] = Json(std::move(histograms));
  return Json(std::move(out));
}

std::string to_jsonl_line(const MetricsSnapshot& snapshot, std::uint64_t sequence) {
  Json line = to_json(snapshot);
  line["event"] = Json("metrics");
  line["seq"] = Json(sequence);
  return line.dump(-1);
}

void print_table(const MetricsSnapshot& snapshot, std::ostream& out) {
  TablePrinter table({"metric", "kind", "value", "p50", "p95", "p99"});
  for (const MetricValue& value : snapshot.values) {
    switch (value.kind) {
      case MetricKind::Counter:
        table.row({value.name, "counter", std::to_string(value.counter), "", "", ""});
        break;
      case MetricKind::Gauge:
        table.row({value.name, "gauge", format_number(value.gauge), "", "", ""});
        break;
      case MetricKind::Histogram: {
        const HistogramSnapshot& hist = value.histogram;
        table.row({value.name, "histogram",
                   "n=" + std::to_string(hist.count) +
                       " sum=" + format_number(hist.sum),
                   format_number(hist.quantile(0.50)),
                   format_number(hist.quantile(0.95)),
                   format_number(hist.quantile(0.99))});
        break;
      }
    }
  }
  table.print(out);
}

Json span_profile_to_json(const std::vector<SpanStats>& profile) {
  Json::Array out;
  for (const SpanStats& span : profile) {
    Json::Object entry;
    entry["path"] = Json(span.path);
    entry["calls"] = Json(span.calls);
    entry["total_s"] = Json(span.total_s);
    entry["min_s"] = Json(span.min_s);
    entry["max_s"] = Json(span.max_s);
    out.push_back(Json(std::move(entry)));
  }
  return Json(std::move(out));
}

void print_span_table(const std::vector<SpanStats>& profile, std::ostream& out) {
  TablePrinter table({"span", "calls", "total [s]", "mean [s]", "min [s]", "max [s]"});
  for (const SpanStats& span : profile) {
    const double mean =
        span.calls > 0 ? span.total_s / static_cast<double>(span.calls) : 0.0;
    table.row({std::string(span.depth() * 2, ' ') + std::string(span.name()),
               std::to_string(span.calls), format_double(span.total_s, 6),
               format_double(mean, 6), format_double(span.min_s, 6),
               format_double(span.max_s, 6)});
  }
  table.print(out);
}

}  // namespace pwx::obs
