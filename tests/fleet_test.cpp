// Equivalence and scaling tests for the dense serving path and the sharded
// FleetEstimator: the dense (ModelLayout/DenseSample) representation must be
// bit-identical to the map-based one, and batched/sharded/parallel ingestion
// must be bit-identical to a serial ingest loop for any shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"

namespace pwx::core {
namespace {

using acquire::DataRow;
using acquire::Dataset;

const std::vector<pmc::Preset> kEvents{pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC,
                                       pmc::Preset::BR_MSP};

/// Synthetic Eq.1-representable model over three events (same generator idea
/// as extensions_test).
const PowerModel& test_model() {
  static const PowerModel model = [] {
    Rng rng(31);
    Dataset ds;
    for (std::size_t i = 0; i < 150; ++i) {
      DataRow row;
      row.workload = "w" + std::to_string(i % 6);
      row.phase = "main";
      row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
      row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
      const double e1 = rng.uniform(0.1, 2.0);
      const double e2 = rng.uniform(0.0, 5.0);
      row.counter_rates[pmc::Preset::PRF_DM] = e1 * row.frequency_ghz * 1e9;
      row.counter_rates[pmc::Preset::TOT_CYC] = e2 * row.frequency_ghz * 1e9;
      row.counter_rates[pmc::Preset::BR_MSP] = rng.uniform(0, 1e7);
      const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
      row.avg_power_watts = 20.0 * e1 * v2f + 5.0 * e2 * v2f + 8.0 * v2f +
                            12.0 * row.avg_voltage + 6.0 + rng.normal(0.0, 0.5);
      row.elapsed_s = 1.0;
      ds.append(row);
    }
    FeatureSpec spec;
    spec.events = kEvents;
    return train_model(ds, spec);
  }();
  return model;
}

CounterSample random_sample(Rng& rng) {
  CounterSample sample;
  sample.elapsed_s = rng.uniform(0.05, 2.0);
  sample.frequency_ghz = rng.uniform(1.0, 3.5);
  sample.voltage = rng.uniform(0.7, 1.2);
  for (pmc::Preset p : kEvents) {
    sample.counts[p] = rng.uniform(0.0, 5e9);
  }
  return sample;
}

/// Randomly corrupts a sample the way flaky telemetry does.
CounterSample corrupt_sample(Rng& rng, CounterSample sample) {
  switch (static_cast<int>(rng.uniform(0.0, 5.0))) {
    case 0: sample.elapsed_s = 0.0; break;
    case 1: sample.voltage = -0.1; break;
    case 2: sample.counts.erase(kEvents[1]); break;
    case 3: sample.counts[kEvents[0]] = std::numeric_limits<double>::quiet_NaN(); break;
    default: sample.counts[kEvents[2]] = -4.0; break;
  }
  return sample;
}

// --------------------------------------------------- dense <-> map identity

TEST(DenseLayout, SlotOrderFollowsModelSpec) {
  const ModelLayout layout(test_model());
  ASSERT_EQ(layout.slots(), kEvents.size());
  for (std::size_t i = 0; i < kEvents.size(); ++i) {
    EXPECT_EQ(layout.events()[i], kEvents[i]);
    ASSERT_TRUE(layout.slot_of(kEvents[i]).has_value());
    EXPECT_EQ(*layout.slot_of(kEvents[i]), i);
  }
  EXPECT_FALSE(layout.slot_of(pmc::Preset::TLB_IM).has_value());
}

TEST(DenseLayout, PredictBitIdenticalToModelPredictRow) {
  const PowerModel& model = test_model();
  const ModelLayout layout(model);
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const CounterSample sample = random_sample(rng);
    const DenseSample dense = layout.to_dense(sample);
    // Independent oracle: the training-side prediction on the equivalent
    // DataRow (rates formed by the same counts/elapsed division).
    DataRow row;
    row.frequency_ghz = sample.frequency_ghz;
    row.avg_voltage = sample.voltage;
    row.elapsed_s = sample.elapsed_s;
    for (const auto& [preset, counts] : sample.counts) {
      row.counter_rates[preset] = counts / sample.elapsed_s;
    }
    EXPECT_EQ(layout.predict(dense), model.predict_row(row)) << "sample " << i;
  }
}

TEST(DenseLayout, StrictConversionThrowsOnMissingEvent) {
  const ModelLayout layout(test_model());
  Rng rng(5);
  CounterSample sample = random_sample(rng);
  sample.counts.erase(kEvents[0]);
  EXPECT_THROW(layout.to_dense(sample), InvalidArgument);
}

TEST(OnlineEstimatorDense, StrictPathBitIdenticalToMap) {
  Rng rng(1234);
  OnlineEstimator map_based(test_model(), /*smoothing=*/0.3);
  OnlineEstimator dense_based(test_model(), /*smoothing=*/0.3);
  for (int i = 0; i < 300; ++i) {
    const CounterSample sample = random_sample(rng);
    const DenseSample dense = dense_based.layout().to_dense(sample);
    EXPECT_EQ(map_based.estimate(sample), dense_based.estimate(dense))
        << "diverged at sample " << i;
  }
}

TEST(OnlineEstimatorDense, GuardedPathBitIdenticalToMapUnderFaults) {
  Rng rng(4321);
  OnlineEstimator map_based(test_model(), /*smoothing=*/0.4);
  OnlineEstimator dense_based(test_model(), /*smoothing=*/0.4);
  DenseSample dense = dense_based.layout().make_sample();
  for (int i = 0; i < 500; ++i) {
    CounterSample sample = random_sample(rng);
    if (rng.uniform() < 0.3) {  // fault bursts drive DEGRADED -> FAILED -> OK
      sample = corrupt_sample(rng, sample);
    }
    dense_based.layout().to_dense_guarded(sample, dense);
    EXPECT_EQ(map_based.estimate_guarded(sample),
              dense_based.estimate_guarded(dense))
        << "diverged at sample " << i;
    EXPECT_EQ(map_based.health(), dense_based.health()) << "sample " << i;
    EXPECT_EQ(map_based.consecutive_invalid(), dense_based.consecutive_invalid());
  }
}

// --------------------------------------------------- fleet batch equivalence

struct BatchRound {
  std::vector<NodeSample> samples;
};

/// A seeded multi-round fleet workload with out-of-order node times within a
/// round, repeated nodes, and injected faults.
std::vector<BatchRound> make_workload(const ModelLayout& layout,
                                      const std::vector<NodeId>& ids,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchRound> rounds(8);
  double base = 0.0;
  for (BatchRound& round : rounds) {
    base += 10.0;
    for (NodeId id : ids) {
      if (rng.uniform() < 0.15) {
        continue;  // node misses this round
      }
      NodeSample ns;
      ns.node = id;
      ns.now_s = base + rng.uniform(0.0, 5.0);
      CounterSample sample = random_sample(rng);
      if (rng.uniform() < 0.25) {
        sample = corrupt_sample(rng, sample);
      }
      layout.to_dense_guarded(sample, ns.sample);
      round.samples.push_back(ns);
      if (rng.uniform() < 0.1) {  // occasional double report, later timestamp
        NodeSample again = ns;
        again.now_s += 1.0;
        round.samples.push_back(again);
      }
    }
  }
  return rounds;
}

class FleetBatchEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, bool>> {};

TEST_P(FleetBatchEquivalence, BatchBitIdenticalToSerialIngest) {
  const auto [shard_count, parallel] = GetParam();
  FleetOptions options;
  options.shard_count = shard_count;
  options.parallel_ingest = parallel;
  const double smoothing = 0.5;
  const double horizon = 1e9;
  FleetEstimator serial(test_model(), smoothing, horizon, options);
  FleetEstimator batched(test_model(), smoothing, horizon, options);

  const std::size_t node_count = 40;
  std::vector<NodeId> serial_ids, batched_ids;
  for (std::size_t n = 0; n < node_count; ++n) {
    const std::string name = "node" + std::to_string(n);
    serial_ids.push_back(serial.intern(name));
    batched_ids.push_back(batched.intern(name));
    EXPECT_EQ(serial_ids.back(), batched_ids.back());
  }

  const auto rounds = make_workload(serial.layout(), serial_ids, 0xABCD);
  for (const BatchRound& round : rounds) {
    for (const NodeSample& ns : round.samples) {
      serial.ingest(ns.node, ns.sample, ns.now_s);
    }
    EXPECT_EQ(batched.ingest_batch(round.samples), round.samples.size());
  }

  for (std::size_t n = 0; n < node_count; ++n) {
    const auto se = serial.node_estimate(serial_ids[n]);
    const auto be = batched.node_estimate(batched_ids[n]);
    ASSERT_EQ(se.has_value(), be.has_value()) << "node " << n;
    if (se.has_value()) {
      EXPECT_EQ(*se, *be) << "node " << n;  // bit-identical
    }
    EXPECT_EQ(serial.node_health(serial_ids[n]), batched.node_health(batched_ids[n]));
  }
  // Same shard count => same summation order => identical snapshots.
  const FleetSnapshot ss = serial.snapshot(100.0);
  const FleetSnapshot bs = batched.snapshot(100.0);
  EXPECT_EQ(ss.total_watts, bs.total_watts);
  EXPECT_EQ(ss.nodes_reporting, bs.nodes_reporting);
  EXPECT_EQ(ss.nodes_degraded, bs.nodes_degraded);
  EXPECT_EQ(ss.nodes_failed, bs.nodes_failed);
  EXPECT_EQ(ss.max_node_watts, bs.max_node_watts);
  EXPECT_EQ(ss.min_node_watts, bs.min_node_watts);
}

INSTANTIATE_TEST_SUITE_P(
    ShardAndParallelSweep, FleetBatchEquivalence,
    ::testing::Values(std::pair<std::size_t, bool>{1, false},
                      std::pair<std::size_t, bool>{1, true},
                      std::pair<std::size_t, bool>{4, false},
                      std::pair<std::size_t, bool>{4, true},
                      std::pair<std::size_t, bool>{16, false},
                      std::pair<std::size_t, bool>{16, true}));

TEST(FleetSharding, NodeEstimatesAreShardCountIndependent) {
  // Per-node estimates are bit-identical across shard counts; the snapshot
  // total only changes by summation order (tolerance compare).
  std::vector<FleetSnapshot> snaps;
  std::vector<std::vector<double>> estimates;
  for (std::size_t shard_count : {1u, 4u, 16u}) {
    FleetOptions options;
    options.shard_count = shard_count;
    FleetEstimator fleet(test_model(), 0.5, 1e9, options);
    std::vector<NodeId> ids;
    for (std::size_t n = 0; n < 40; ++n) {
      ids.push_back(fleet.intern("node" + std::to_string(n)));
    }
    for (const BatchRound& round : make_workload(fleet.layout(), ids, 0xABCD)) {
      fleet.ingest_batch(round.samples);
    }
    std::vector<double> est;
    for (NodeId id : ids) {
      est.push_back(fleet.node_estimate(id).value_or(
          std::numeric_limits<double>::quiet_NaN()));
    }
    estimates.push_back(std::move(est));
    snaps.push_back(fleet.snapshot(100.0));
  }
  for (std::size_t c = 1; c < estimates.size(); ++c) {
    for (std::size_t n = 0; n < estimates[0].size(); ++n) {
      if (std::isnan(estimates[0][n])) {
        EXPECT_TRUE(std::isnan(estimates[c][n]));
      } else {
        EXPECT_EQ(estimates[0][n], estimates[c][n]) << "node " << n;
      }
    }
    EXPECT_EQ(snaps[0].nodes_reporting, snaps[c].nodes_reporting);
    EXPECT_EQ(snaps[0].nodes_degraded, snaps[c].nodes_degraded);
    EXPECT_EQ(snaps[0].nodes_failed, snaps[c].nodes_failed);
    EXPECT_DOUBLE_EQ(snaps[0].max_node_watts, snaps[c].max_node_watts);
    EXPECT_DOUBLE_EQ(snaps[0].min_node_watts, snaps[c].min_node_watts);
    EXPECT_NEAR(snaps[0].total_watts, snaps[c].total_watts,
                1e-9 * std::abs(snaps[0].total_watts));
  }
}

TEST(FleetSharding, BatchRejectsTimeGoingBackwardsLikeSerial) {
  FleetEstimator fleet(test_model());
  Rng rng(3);
  const NodeId id = fleet.intern("n");
  DenseSample dense = fleet.layout().make_sample();
  fleet.layout().to_dense_guarded(random_sample(rng), dense);
  std::vector<NodeSample> batch{{id, 10.0, dense}, {id, 5.0, dense}};
  EXPECT_THROW(fleet.ingest_batch(batch), InvalidArgument);
  // The first (valid) sample was applied before the throw, like a loop.
  EXPECT_TRUE(fleet.node_estimate(id).has_value());
}

TEST(FleetSharding, InternSurvivesHashGrowthAndRoundTrips) {
  FleetEstimator fleet(test_model());
  std::vector<NodeId> ids;
  for (std::size_t n = 0; n < 500; ++n) {  // well past the initial table size
    ids.push_back(fleet.intern("host-" + std::to_string(n)));
  }
  EXPECT_EQ(fleet.node_count(), 500u);
  for (std::size_t n = 0; n < 500; ++n) {
    const std::string name = "host-" + std::to_string(n);
    EXPECT_EQ(fleet.intern(name), ids[n]);  // idempotent
    ASSERT_TRUE(fleet.find(name).has_value());
    EXPECT_EQ(*fleet.find(name), ids[n]);
    EXPECT_EQ(fleet.node_name(ids[n]), name);
  }
  EXPECT_FALSE(fleet.find("never-interned").has_value());
}

// --------------------------------------------------- snapshot edge cases

TEST(FleetSnapshotExtremes, EmptyFleetHasNaNExtremes) {
  FleetEstimator fleet(test_model());
  const FleetSnapshot snap = fleet.snapshot(0.0);
  EXPECT_EQ(snap.nodes_reporting, 0u);
  EXPECT_EQ(snap.total_watts, 0.0);
  EXPECT_TRUE(std::isnan(snap.min_node_watts));
  EXPECT_TRUE(std::isnan(snap.max_node_watts));
}

TEST(FleetSnapshotExtremes, AllStaleFleetHasNaNExtremes) {
  FleetEstimator fleet(test_model(), 0.0, /*staleness_horizon_s=*/5.0);
  Rng rng(8);
  fleet.ingest("a", random_sample(rng), 0.0);
  fleet.ingest("b", random_sample(rng), 1.0);
  const FleetSnapshot snap = fleet.snapshot(100.0);
  EXPECT_EQ(snap.nodes_reporting, 0u);
  EXPECT_EQ(snap.nodes_stale, 2u);
  EXPECT_EQ(snap.total_watts, 0.0);
  EXPECT_TRUE(std::isnan(snap.min_node_watts));
  EXPECT_TRUE(std::isnan(snap.max_node_watts));
}

TEST(FleetSnapshotExtremes, ExtremesRecomputeWhenHolderGoesStale) {
  FleetEstimator fleet(test_model(), 0.0, /*staleness_horizon_s=*/50.0);
  Rng rng(12);
  // Three nodes with distinct estimates; the freshest reports are later.
  const double a = fleet.ingest("a", random_sample(rng), 0.0);
  const double b = fleet.ingest("b", random_sample(rng), 60.0);
  const double c = fleet.ingest("c", random_sample(rng), 60.0);
  // At t=100, node "a" (t=0) is stale; extremes must cover only {b, c}.
  const FleetSnapshot snap = fleet.snapshot(100.0);
  EXPECT_EQ(snap.nodes_reporting, 2u);
  EXPECT_EQ(snap.nodes_stale, 1u);
  EXPECT_DOUBLE_EQ(snap.max_node_watts, std::max(b, c));
  EXPECT_DOUBLE_EQ(snap.min_node_watts, std::min(b, c));
  EXPECT_NEAR(snap.total_watts, b + c, 1e-9);
  (void)a;
}

}  // namespace
}  // namespace pwx::core
