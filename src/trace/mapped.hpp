// Zero-copy trace ingestion: mmap a v4 OTF2-lite file and alias its event
// columns and string table in place.
//
// MappedTraceFile::open maps the file read-only, validates the section table
// once through the same parse_trace_v4 the buffered reader uses, and exposes
// the result as a TraceView whose spans point straight into the mapping — no
// per-event deserialization, no column copies. Integrity stays a choice:
// by default the one-shot lane-FNV pass runs right after the structural
// parse (structure-first / integrity-last, the same error ordering the
// buffered reader has); with MapOptions::verify_checksum=false the pass is
// deferred until verify() is called, which lets latency-sensitive consumers
// start scanning immediately.
//
// Inputs the zero-copy path cannot serve fall back transparently to the
// buffered reader: v2/v3 files (their layouts are not alignment-safe), and
// files mmap itself refuses (non-regular files, filesystems without mmap
// support). The fallback materializes an owned Trace and adapts it to the
// same TraceView type, so consumers never branch on how the bytes arrived —
// and because both paths share one parser, hostile input is rejected with
// the identical IoError either way.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/mmap.hpp"
#include "trace/format.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace pwx::trace {

/// Knobs for MappedTraceFile::open.
struct MapOptions {
  /// Verify the checksum footer during open(). When false, open() performs
  /// only the structural parse; call verify() later (or never, for callers
  /// that re-read known-good files) — checksum_verified() reports the state.
  bool verify_checksum = true;
};

/// A trace backed by a read-only memory mapping (or, transparently, by an
/// owned buffered read when mapping is not possible). Move-only; the
/// TraceView stays valid across moves because spans reference the mapping
/// and heap vectors, whose addresses moving does not change.
class MappedTraceFile {
public:
  /// Open `path`, preferring the zero-copy mapped path for v4 files.
  /// Throws pwx::IoError on malformed, truncated, or corrupted input with
  /// the same message/byte-offset/record-index the buffered reader emits.
  static MappedTraceFile open(const std::string& path, const MapOptions& options = {});

  MappedTraceFile(MappedTraceFile&&) noexcept = default;
  MappedTraceFile& operator=(MappedTraceFile&&) noexcept = default;
  MappedTraceFile(const MappedTraceFile&) = delete;
  MappedTraceFile& operator=(const MappedTraceFile&) = delete;

  /// The trace contents. Valid for the lifetime of this object.
  const TraceView& view() const { return view_; }

  /// Run the deferred checksum pass (no-op when already verified).
  /// Throws the usual "checksum mismatch" IoError on corruption.
  void verify();

  /// True once the checksum footer has been checked (always true for the
  /// buffered fallback and for open() with verify_checksum=true).
  bool checksum_verified() const { return checksum_verified_; }

  /// True when the zero-copy mapped path served this file.
  bool mapped() const { return map_.data() != nullptr; }

  /// On-disk format generation (2, 3, or 4).
  int format_version() const { return format_version_; }

  /// Accounting for observability: bytes aliased in place vs. bytes that
  /// went through the buffered copying path. Exactly one of them is the
  /// file size; the other is zero.
  std::size_t bytes_mapped() const { return mapped() ? map_.size() : 0; }
  std::size_t bytes_copied() const { return bytes_copied_; }

  /// The validated section table (empty for the buffered fallback).
  std::span<const format::SectionInfo> sections() const;

  const std::string& path() const { return path_; }

private:
  MappedTraceFile() = default;

  std::string path_;
  MappedFile map_;
  format::ParsedTraceV4 parsed_;  ///< views into map_ (mapped v4 path only)

  // Buffered fallback: an owned Trace adapted to the shared view type.
  // Heap-allocated so the adapter's address (which view_'s spans reference)
  // survives moves of this object.
  std::unique_ptr<Trace> owned_;
  std::unique_ptr<TraceViewAdapter> adapter_;

  TraceView view_;
  int format_version_ = 0;
  std::size_t bytes_copied_ = 0;
  bool checksum_verified_ = false;
};

}  // namespace pwx::trace
