#include "la/qr.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pwx::la {

QrDecomposition::QrDecomposition(const Matrix& a)
    : m_(a.rows()), n_(a.cols()), qr_(a.rows() * a.cols()), tau_(a.cols(), 0.0) {
  PWX_REQUIRE(m_ >= n_ && n_ > 0, "QR needs m >= n >= 1, got ", m_, "x", n_);
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < m_; ++i) {
      at(i, k) = a(i, k);
    }
  }

  for (std::size_t k = 0; k < n_; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) {
      norm = std::hypot(norm, at(i, k));
    }
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    if (at(k, k) < 0.0) {
      norm = -norm;  // norm takes x_k's sign so v_k = 1 + |x_k|/|x| (no cancellation)
    }
    for (std::size_t i = k; i < m_; ++i) {
      at(i, k) /= norm;
    }
    at(k, k) += 1.0;
    tau_[k] = at(k, k);

    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m_; ++i) {
        s += at(i, k) * at(i, j);
      }
      s = -s / at(k, k);
      for (std::size_t i = k; i < m_; ++i) {
        at(i, j) += s * at(i, k);
      }
    }
    at(k, k) = -norm;  // H x = -norm * e_k, so r_kk = -norm; v_k lives in tau_
  }

  // Rank tolerance relative to the largest diagonal magnitude.
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n_; ++k) {
    max_diag = std::max(max_diag, std::fabs(at(k, k)));
  }
  rank_tol_ =
      std::max<double>(m_, n_) * std::numeric_limits<double>::epsilon() * max_diag;
  for (std::size_t k = 0; k < n_; ++k) {
    if (std::fabs(at(k, k)) <= rank_tol_) {
      full_rank_ = false;
      break;
    }
  }
}

void QrDecomposition::transform_column(std::span<double> column) const {
  transform_column(column, 0);
}

void QrDecomposition::transform_column(std::span<double> column,
                                       std::size_t first_reflector) const {
  PWX_REQUIRE(column.size() == m_, "transform_column: expected length ", m_, ", got ",
              column.size());
  for (std::size_t k = first_reflector; k < n_; ++k) {
    if (tau_[k] == 0.0) {
      continue;
    }
    // Reconstruct v_k: v_k[k] = tau_[k] (the stored 1+ value), below-diagonal
    // entries live in the factor. Same arithmetic as the constructor's
    // right-looking update of a trailing column.
    double s = tau_[k] * column[k];
    for (std::size_t i = k + 1; i < m_; ++i) {
      s += at(i, k) * column[i];
    }
    s = -s / tau_[k];
    column[k] += s * tau_[k];
    for (std::size_t i = k + 1; i < m_; ++i) {
      column[i] += s * at(i, k);
    }
  }
}

void QrDecomposition::append_column(std::span<const double> column) {
  PWX_REQUIRE(column.size() == m_, "append_column: expected length ", m_, ", got ",
              column.size());
  PWX_REQUIRE(m_ > n_, "append_column: factor is already square (", m_, "x", n_, ")");

  const std::size_t kn = n_;  // index of the new column
  qr_.resize(qr_.size() + m_);
  n_ += 1;
  tau_.push_back(0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    at(i, kn) = column[i];
  }

  // Apply the stored reflectors in order, then form one new reflector — the
  // same arithmetic the constructor performs on a trailing column, so the
  // extended factor matches a from-scratch factorization bit for bit.
  for (std::size_t k = 0; k < kn; ++k) {
    if (tau_[k] == 0.0) {
      continue;
    }
    double s = tau_[k] * at(k, kn);
    for (std::size_t i = k + 1; i < m_; ++i) {
      s += at(i, k) * at(i, kn);
    }
    s = -s / tau_[k];
    at(k, kn) += s * tau_[k];
    for (std::size_t i = k + 1; i < m_; ++i) {
      at(i, kn) += s * at(i, k);
    }
  }

  double norm = 0.0;
  for (std::size_t i = kn; i < m_; ++i) {
    norm = std::hypot(norm, at(i, kn));
  }
  if (norm != 0.0) {
    if (at(kn, kn) < 0.0) {
      norm = -norm;
    }
    for (std::size_t i = kn; i < m_; ++i) {
      at(i, kn) /= norm;
    }
    at(kn, kn) += 1.0;
    tau_[kn] = at(kn, kn);
    at(kn, kn) = -norm;
  }

  // Re-derive the rank tolerance over all diagonals, as the constructor does.
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n_; ++k) {
    max_diag = std::max(max_diag, std::fabs(at(k, k)));
  }
  rank_tol_ =
      std::max<double>(m_, n_) * std::numeric_limits<double>::epsilon() * max_diag;
  full_rank_ = true;
  for (std::size_t k = 0; k < n_; ++k) {
    if (std::fabs(at(k, k)) <= rank_tol_) {
      full_rank_ = false;
      break;
    }
  }
}

std::vector<double> QrDecomposition::apply_qt(std::span<const double> b) const {
  PWX_REQUIRE(b.size() == m_, "apply_qt: expected length ", m_, ", got ", b.size());
  std::vector<double> y(b.begin(), b.end());
  for (std::size_t k = 0; k < n_; ++k) {
    if (tau_[k] == 0.0) {
      continue;
    }
    double s = tau_[k] * y[k];
    for (std::size_t i = k + 1; i < m_; ++i) {
      s += at(i, k) * y[i];
    }
    s = -s / tau_[k];
    y[k] += s * tau_[k];
    for (std::size_t i = k + 1; i < m_; ++i) {
      y[i] += s * at(i, k);
    }
  }
  return y;
}

std::vector<double> QrDecomposition::solve(std::span<const double> b) const {
  if (!full_rank_) {
    throw NumericalError("QR solve on rank-deficient matrix (collinear columns)");
  }
  std::vector<double> y = apply_qt(b);
  std::vector<double> x(n_);
  for (std::size_t kk = n_; kk-- > 0;) {
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n_; ++j) {
      s -= at(kk, j) * x[j];
    }
    x[kk] = s / at(kk, kk);
  }
  return x;
}

Matrix QrDecomposition::r() const {
  Matrix out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i; j < n_; ++j) {
      out(i, j) = at(i, j);
    }
  }
  return out;
}

Matrix QrDecomposition::thin_q() const {
  Matrix q(m_, n_);
  // Start from the first n columns of I and apply reflectors in reverse.
  for (std::size_t j = 0; j < n_; ++j) {
    q(j, j) = 1.0;
  }
  for (std::size_t k = n_; k-- > 0;) {
    if (tau_[k] == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < n_; ++j) {
      double s = tau_[k] * q(k, j);
      for (std::size_t i = k + 1; i < m_; ++i) {
        s += at(i, k) * q(i, j);
      }
      s = -s / tau_[k];
      q(k, j) += s * tau_[k];
      for (std::size_t i = k + 1; i < m_; ++i) {
        q(i, j) += s * at(i, k);
      }
    }
  }
  return q;
}

Matrix QrDecomposition::r_inverse() const {
  if (!full_rank_) {
    throw NumericalError("R inverse on rank-deficient factor");
  }
  Matrix inv(n_, n_);
  // Solve R * inv = I column by column (back substitution).
  for (std::size_t c = 0; c < n_; ++c) {
    for (std::size_t kk = n_; kk-- > 0;) {
      double s = (kk == c) ? 1.0 : 0.0;
      for (std::size_t j = kk + 1; j < n_; ++j) {
        s -= at(kk, j) * inv(j, c);
      }
      inv(kk, c) = s / at(kk, kk);
    }
  }
  return inv;
}

double QrDecomposition::diagonal_condition() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t k = 0; k < n_; ++k) {
    const double d = std::fabs(at(k, k));
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  if (lo == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return hi / lo;
}

void QrExtension::rebind(const QrDecomposition& base) {
  base_ = &base;
  clear();
}

void QrExtension::clear() {
  appended_ = 0;
  cols_.clear();
  tau_.clear();
}

void QrExtension::append_transformed(std::span<const double> column) {
  const std::size_t m = rows();
  PWX_REQUIRE(column.size() == m, "QrExtension: expected column length ", m, ", got ",
              column.size());
  const std::size_t kn = cols();  // combined index of the new column
  PWX_REQUIRE(m > kn, "QrExtension: factor is already square (", m, "x", kn, ")");

  cols_.insert(cols_.end(), column.begin(), column.end());
  tau_.push_back(0.0);
  const std::size_t j = appended_;
  appended_ += 1;
  double* c = cols_.data() + j * m;

  // Apply the previously appended extension reflectors (the base reflectors
  // were already applied by the caller / append), then form this column's
  // reflector — identical arithmetic to QrDecomposition::append_column.
  for (std::size_t e = 0; e < j; ++e) {
    if (tau_[e] == 0.0) {
      continue;
    }
    const double* v = cols_.data() + e * m;
    const std::size_t k = base_->cols() + e;
    double s = tau_[e] * c[k];
    for (std::size_t i = k + 1; i < m; ++i) {
      s += v[i] * c[i];
    }
    s = -s / tau_[e];
    c[k] += s * tau_[e];
    for (std::size_t i = k + 1; i < m; ++i) {
      c[i] += s * v[i];
    }
  }

  double norm = 0.0;
  for (std::size_t i = kn; i < m; ++i) {
    norm = std::hypot(norm, c[i]);
  }
  if (norm != 0.0) {
    if (c[kn] < 0.0) {
      norm = -norm;
    }
    for (std::size_t i = kn; i < m; ++i) {
      c[i] /= norm;
    }
    c[kn] += 1.0;
    tau_[j] = c[kn];
    c[kn] = -norm;
  }
}

void QrExtension::append(std::span<const double> column) {
  const std::size_t m = rows();
  PWX_REQUIRE(column.size() == m, "QrExtension: expected column length ", m, ", got ",
              column.size());
  // Run the base reflectors over a staged copy, then let append_transformed
  // finish with the extension reflectors and the new reflector.
  staged_.assign(column.begin(), column.end());
  base_->transform_column(staged_);
  append_transformed(staged_);
}

bool QrExtension::full_rank() const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  // Same tolerance a from-scratch factorization of all n columns computes:
  // max(m, n)·eps·max|r_ii| over the combined diagonal.
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(r_at(k, k)));
  }
  const double tol =
      std::max<double>(m, n) * std::numeric_limits<double>::epsilon() * max_diag;
  for (std::size_t k = 0; k < n; ++k) {
    if (std::fabs(r_at(k, k)) <= tol) {
      return false;
    }
  }
  return true;
}

void QrExtension::apply_qt_ext(std::span<double> y) const {
  const std::size_t m = rows();
  PWX_REQUIRE(y.size() == m, "apply_qt_ext: expected length ", m, ", got ", y.size());
  for (std::size_t e = 0; e < appended_; ++e) {
    if (tau_[e] == 0.0) {
      continue;
    }
    const double* v = cols_.data() + e * m;
    const std::size_t k = base_->cols() + e;
    double s = tau_[e] * y[k];
    for (std::size_t i = k + 1; i < m; ++i) {
      s += v[i] * y[i];
    }
    s = -s / tau_[e];
    y[k] += s * tau_[e];
    for (std::size_t i = k + 1; i < m; ++i) {
      y[i] += s * v[i];
    }
  }
}

std::vector<double> QrExtension::solve_from_qty(std::span<const double> qty) const {
  const std::size_t n = cols();
  PWX_REQUIRE(qty.size() >= n, "solve_from_qty: expected at least ", n,
              " entries, got ", qty.size());
  std::vector<double> x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    double s = qty[kk];
    for (std::size_t j = kk + 1; j < n; ++j) {
      s -= r_at(kk, j) * x[j];
    }
    x[kk] = s / r_at(kk, kk);
  }
  return x;
}

}  // namespace pwx::la
