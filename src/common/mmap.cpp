#include "common/mmap.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hpp"

namespace pwx {

namespace {

[[noreturn]] void fail(const std::string& path, const char* op) {
  throw IoError("mmap: cannot " + std::string(op) + " '" + path +
                    "': " + std::strerror(errno),
                ErrorCode::Io);
}

}  // namespace

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

MappedFile MappedFile::map_readonly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail(path, "open");
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "stat");
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw IoError("mmap: '" + path + "' is not a regular file", ErrorCode::Io);
  }

  MappedFile out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ == 0) {
    // mmap(length=0) is an error; an empty file is a valid (empty) mapping.
    ::close(fd);
    return out;
  }

  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  // Prefault the pages up front: trace readers touch every byte once, and a
  // single populate walk is cheaper than taking per-page soft faults inside
  // the parse/profile scan.
  flags |= MAP_POPULATE;
#endif
  void* addr = ::mmap(nullptr, out.size_, PROT_READ, flags, fd, 0);
#ifdef MAP_POPULATE
  if (addr == MAP_FAILED) {
    // Some filesystems reject MAP_POPULATE; retry plain before giving up.
    addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  }
#endif
  if (addr == MAP_FAILED) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    out.size_ = 0;
    fail(path, "mmap");
  }
  ::close(fd);
  out.data_ = static_cast<const char*>(addr);
#ifdef POSIX_MADV_SEQUENTIAL
  // Best-effort readahead hint; ignore failures.
  ::posix_madvise(addr, out.size_, POSIX_MADV_SEQUENTIAL);
#endif
  return out;
}

}  // namespace pwx
