// Energy accounting on top of run-time power estimation.
//
// Power models exist to be integrated: energy-aware optimization (the
// paper's motivation, going back to Bellosa's event-driven energy
// accounting) needs joules attributed to execution intervals, not just a
// power reading. The EnergyAccountant consumes the same CounterSample
// stream as the OnlineEstimator and maintains the integral, plus the
// energy-delay metrics used to compare optimization candidates.
#pragma once

#include "core/estimator.hpp"
#include "core/model.hpp"

namespace pwx::core {

/// Accumulated energy statistics.
struct EnergyReport {
  double energy_joules = 0.0;
  double elapsed_s = 0.0;
  double average_watts = 0.0;       ///< energy / elapsed
  double peak_watts = 0.0;          ///< highest interval estimate
  double energy_delay = 0.0;        ///< E * t
  double energy_delay_squared = 0.0;///< E * t²
  std::size_t samples = 0;
};

/// Integrates estimated power over a counter-sample stream.
class EnergyAccountant {
public:
  explicit EnergyAccountant(PowerModel model);

  /// Account one interval; returns the interval's energy in joules.
  double add(const CounterSample& sample);

  /// Current totals.
  EnergyReport report() const;

  /// Restart accounting (the model is kept).
  void reset();

  const PowerModel& model() const { return estimator_.model(); }
  const std::vector<pmc::Preset>& required_events() const {
    return estimator_.required_events();
  }

private:
  OnlineEstimator estimator_;
  double energy_joules_ = 0.0;
  double elapsed_s_ = 0.0;
  double peak_watts_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace pwx::core
