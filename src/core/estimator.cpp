#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pwx::core {

namespace {

// Metric handles for the guarded estimation path. The strict estimate()
// fast path stays uninstrumented to honour the overhead contract.
struct EstimatorMetrics {
  obs::Counter& estimates;
  obs::Counter& invalid_samples;
  obs::Counter& clamped;
  obs::Counter& health_transitions;
  obs::Gauge& health;
};

EstimatorMetrics& estimator_metrics() {
  static EstimatorMetrics m{
      obs::registry().counter("estimator.estimates",
                              "guarded power estimates produced"),
      obs::registry().counter("estimator.invalid_samples",
                              "samples rejected by the guarded estimator"),
      obs::registry().counter("estimator.clamped",
                              "raw estimates clamped into the guard range"),
      obs::registry().counter("estimator.health_transitions",
                              "estimator health-state changes"),
      obs::registry().gauge("estimator.health",
                            "estimator health (0=ok, 1=degraded, 2=failed)"),
  };
  return m;
}

}  // namespace

OnlineEstimator::OnlineEstimator(PowerModel model, double smoothing,
                                 EstimatorGuards guards)
    : model_(std::move(model)), smoothing_(smoothing), guards_(guards) {
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  PWX_REQUIRE(guards_.min_watts <= guards_.max_watts,
              "estimator guard range is inverted");
}

double OnlineEstimator::smooth(double raw) {
  if (smoothing_ <= 0.0) {
    return raw;
  }
  if (!smoothed_.has_value()) {
    smoothed_ = raw;
  } else {
    smoothed_ = smoothing_ * *smoothed_ + (1.0 - smoothing_) * raw;
  }
  return *smoothed_;
}

double OnlineEstimator::estimate(const CounterSample& sample) {
  PWX_REQUIRE(sample.elapsed_s > 0.0, "sample needs a positive elapsed time");
  PWX_REQUIRE(sample.frequency_ghz > 0.0, "sample needs a frequency");
  PWX_REQUIRE(sample.voltage > 0.0, "sample needs a voltage");

  // Adapt the sample into a DataRow so the model's feature builder applies.
  acquire::DataRow row;
  row.workload = "online";
  row.phase = "online";
  row.frequency_ghz = sample.frequency_ghz;
  row.avg_voltage = sample.voltage;
  row.elapsed_s = sample.elapsed_s;
  for (pmc::Preset preset : model_.spec().events) {
    const auto it = sample.counts.find(preset);
    PWX_REQUIRE(it != sample.counts.end(), "sample lacks event ",
                std::string(pmc::preset_name(preset)));
    row.counter_rates[preset] = it->second / sample.elapsed_s;
  }

  return smooth(model_.predict_row(row));
}

std::optional<double> OnlineEstimator::try_estimate(const CounterSample& sample) const {
  const auto finite_positive = [](double v) { return std::isfinite(v) && v > 0.0; };
  if (!finite_positive(sample.elapsed_s) || !finite_positive(sample.frequency_ghz) ||
      !finite_positive(sample.voltage)) {
    return std::nullopt;
  }
  acquire::DataRow row;
  row.workload = "online";
  row.phase = "online";
  row.frequency_ghz = sample.frequency_ghz;
  row.avg_voltage = sample.voltage;
  row.elapsed_s = sample.elapsed_s;
  for (pmc::Preset preset : model_.spec().events) {
    const auto it = sample.counts.find(preset);
    if (it == sample.counts.end() || !std::isfinite(it->second) || it->second < 0.0) {
      return std::nullopt;
    }
    row.counter_rates[preset] = it->second / sample.elapsed_s;
  }
  const double raw = model_.predict_row(row);
  if (!std::isfinite(raw)) {
    return std::nullopt;
  }
  return raw;
}

double OnlineEstimator::estimate_guarded(const CounterSample& sample) {
  const bool telemetry = obs::enabled();
  const HealthState before = health_;
  const std::optional<double> raw = try_estimate(sample);
  if (raw.has_value()) {
    consecutive_invalid_ = 0;
    health_ = HealthState::Ok;
    const double clamped = std::clamp(*raw, guards_.min_watts, guards_.max_watts);
    const double out = smooth(clamped);
    last_good_ = out;
    if (telemetry) {
      EstimatorMetrics& m = estimator_metrics();
      m.estimates.add(1);
      if (clamped != *raw) {
        m.clamped.add(1);
      }
      // The gauge is only written on transitions to keep the steady-state
      // cost of this hot path to one counter increment.
      if (health_ != before) {
        m.health_transitions.add(1);
        m.health.set(static_cast<double>(health_));
      }
    }
    return out;
  }
  // Invalid sample: hold the last good estimate with a bounded staleness.
  consecutive_invalid_ += 1;
  health_ = consecutive_invalid_ > guards_.max_consecutive_invalid
                ? HealthState::Failed
                : HealthState::Degraded;
  const double held = last_good_.value_or(guards_.min_watts);
  if (telemetry) {
    EstimatorMetrics& m = estimator_metrics();
    m.estimates.add(1);
    m.invalid_samples.add(1);
    if (health_ != before) {
      m.health_transitions.add(1);
      m.health.set(static_cast<double>(health_));
    }
  }
  return std::clamp(held, guards_.min_watts, guards_.max_watts);
}

void OnlineEstimator::reset() {
  smoothed_.reset();
  last_good_.reset();
  consecutive_invalid_ = 0;
  health_ = HealthState::Ok;
}

}  // namespace pwx::core
