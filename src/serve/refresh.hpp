// Guarded model retraining: one end-to-end refresh_model() call.
//
// This is the pipeline a drift trigger launches: re-ingest the retraining
// corpus (recorded trace files) into a dataset, re-run event selection and
// the Equation-1 fit on a training split, then put the candidate through two
// gates before it may touch the serving path:
//
//   1. Plausibility — the candidate must survive a model_io JSON round-trip
//      (the same checks a deployed model file must pass: coefficient counts
//      matching the spec, finite coefficients) and produce finite
//      predictions on the holdout. Catches structurally broken candidates,
//      including the TruncatedCandidate fault.
//   2. Validation — holdout MAPE must beat an absolute ceiling and must not
//      regress against the *incumbent* model's MAPE on the same holdout by
//      more than a configured margin. A candidate that is merely different
//      is not good enough to swap.
//
// Only then is the candidate published — and only through
// core::LayoutEpoch::try_publish with the generation observed at the start
// of the refresh, so a refresher racing a faster one can never clobber the
// newer publication (RejectedStale instead). Every exit path is recorded in
// serve.* counters and the returned RefreshReport; a rejected refresh leaves
// the epoch untouched, which *is* the rollback — readers never saw the
// candidate.
//
// Fault hooks (fault::FaultPlan) cover the refresh path itself:
// TruncatedCandidate corrupts the fitted coefficients before the gates,
// ValidationTimeout expires the validation watchdog, StaleLayoutPublish
// makes the refresher publish against a generation it never observed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acquire/campaign.hpp"
#include "core/epoch.hpp"
#include "fault/fault.hpp"
#include "pmc/events.hpp"

namespace pwx::serve {

/// Why a refresh ended the way it did.
enum class RefreshStatus {
  Published,            ///< candidate passed both gates and was swapped in
  RejectedImplausible,  ///< failed the structural/round-trip plausibility gate
  RejectedValidation,   ///< holdout MAPE regressed beyond the margin or ceiling
  RejectedTimeout,      ///< validation watchdog expired
  RejectedStale,        ///< epoch moved on; try_publish refused the candidate
  Failed,               ///< pipeline error before any gate (ingest/fit threw)
};

std::string_view refresh_status_name(RefreshStatus status);

/// The pipeline stage a refresh ended in. Every stage is timed into a
/// `serve.refresh.stage_seconds.<stage>` histogram and wrapped in a child
/// span of "serve.refresh_model" (refresh.<stage>), so stage latency is
/// visible in plain metrics with tracing off and causally attributed with
/// tracing on. On any non-Published exit, RefreshReport::stage names the
/// breached stage.
enum class RefreshStage {
  None,          ///< exited before the first stage ran
  Ingest,        ///< corpus ingest + holdout split
  Select,        ///< event selection over the training split
  Fit,           ///< Equation-1 fit of the candidate
  Plausibility,  ///< structural round-trip + finite-prediction gate
  Validation,    ///< holdout-MAPE gate vs ceiling and incumbent
  Publish,       ///< generation-guarded epoch swap
};

std::string_view refresh_stage_name(RefreshStage stage);

/// Everything refresh_model needs.
struct RefreshConfig {
  /// Retraining corpus: recorded trace files (ingest_trace_files).
  std::vector<std::string> trace_paths;
  acquire::IngestOptions ingest;

  /// Event selection for the candidate (Algorithm 1 over the corpus's
  /// common presets).
  std::size_t event_count = 6;
  double max_mean_vif = 40.0;

  /// Seeded train/holdout split for the validation gate.
  double holdout_fraction = 0.25;
  std::uint64_t holdout_seed = 0x5EED;

  /// Validation gate: candidate holdout MAPE must be <= this ceiling ...
  double max_holdout_mape_pct = 15.0;
  /// ... and <= incumbent holdout MAPE + this margin (percentage points).
  double max_mape_regression_pct = 1.0;
  /// Validation watchdog: gate evaluation must finish within this budget.
  double validation_deadline_s = 60.0;

  /// Optional refresh-path fault injection (not owned; may be null).
  const fault::FaultInjector* injector = nullptr;
  /// Site key for fault decisions; `attempt` is the occurrence index, so a
  /// plan can fire on, say, exactly the third refresh.
  std::string fault_site = "serve/refresh";
  std::uint64_t attempt = 0;
};

/// What happened, for logs, tests, and the supervisor's provenance trail.
struct RefreshReport {
  RefreshStatus status = RefreshStatus::Failed;
  /// Stage the pipeline exited in: the breached stage for rejections and
  /// failures, Publish for a successful refresh.
  RefreshStage stage = RefreshStage::None;
  std::uint64_t incumbent_generation = 0;  ///< generation observed at start
  std::uint64_t published_generation = 0;  ///< 0 unless status == Published
  std::size_t dataset_rows = 0;
  std::size_t holdout_rows = 0;
  std::vector<pmc::Preset> selected_events;
  double candidate_r_squared = 0.0;
  double candidate_holdout_mape_pct = 0.0;
  double incumbent_holdout_mape_pct = 0.0;
  double elapsed_s = 0.0;
  std::string detail;  ///< human-readable reason for the exit path

  bool published() const { return status == RefreshStatus::Published; }
};

/// Run the full retrain pipeline against `epoch`. Never throws: every
/// failure mode is a RefreshStatus. On any non-Published status the epoch is
/// untouched — serving continues on the incumbent publication.
RefreshReport refresh_model(core::LayoutEpoch& epoch, const RefreshConfig& config);

}  // namespace pwx::serve
