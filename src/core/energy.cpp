#include "core/energy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pwx::core {

EnergyAccountant::EnergyAccountant(PowerModel model)
    : estimator_(std::move(model), /*smoothing=*/0.0) {}

double EnergyAccountant::add(const CounterSample& sample) {
  const double watts = estimator_.estimate(sample);
  const double joules = watts * sample.elapsed_s;
  energy_joules_ += joules;
  elapsed_s_ += sample.elapsed_s;
  peak_watts_ = std::max(peak_watts_, watts);
  samples_ += 1;
  return joules;
}

EnergyReport EnergyAccountant::report() const {
  EnergyReport out;
  out.energy_joules = energy_joules_;
  out.elapsed_s = elapsed_s_;
  out.average_watts = elapsed_s_ > 0.0 ? energy_joules_ / elapsed_s_ : 0.0;
  out.peak_watts = peak_watts_;
  out.energy_delay = energy_joules_ * elapsed_s_;
  out.energy_delay_squared = energy_joules_ * elapsed_s_ * elapsed_s_;
  out.samples = samples_;
  return out;
}

void EnergyAccountant::reset() {
  energy_joules_ = 0.0;
  elapsed_s_ = 0.0;
  peak_watts_ = 0.0;
  samples_ = 0;
  estimator_.reset();
}

}  // namespace pwx::core
