// Streaming runtime power estimation.
//
// This is the deployment side of the paper's models: a CounterSource
// delivers periodic counter/voltage samples (real perf_event hardware via
// pwx::host, or the simulator), and the OnlineEstimator turns each sample
// into a power estimate with optional exponential smoothing. The estimator
// only needs the counters of the trained model — on Haswell the paper's six
// events fit into a single hardware event set, so runtime estimation needs
// no multiplexing.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/health.hpp"
#include "core/model.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

/// One periodic reading from a counter source.
struct CounterSample {
  double elapsed_s = 0;                     ///< interval covered by the counts
  double frequency_ghz = 0;                 ///< operating frequency
  double voltage = 0;                       ///< core VDD readout
  std::map<pmc::Preset, double> counts;     ///< event counts over the interval
};

/// Abstract source of counter samples.
class CounterSource {
public:
  virtual ~CounterSource() = default;

  /// Presets this source can deliver.
  virtual std::vector<pmc::Preset> available_events() const = 0;

  /// Begin counting the given presets; throws when unsupported.
  virtual void start(const std::vector<pmc::Preset>& events) = 0;

  /// Read-and-reset: counts since the previous read. Returns nullopt when
  /// the source is exhausted (simulated runs end; hardware never does).
  virtual std::optional<CounterSample> read() = 0;
};

/// Output guards of the estimator's hardened path (estimate_guarded).
struct EstimatorGuards {
  double min_watts = 0.0;      ///< estimates clamped to [min, max]
  double max_watts = 2000.0;   ///< generous bound for a 2-socket node
  /// Consecutive invalid samples tolerated while holding the last good
  /// estimate (DEGRADED); one more and the estimator reports FAILED.
  std::size_t max_consecutive_invalid = 5;
};

/// Turns counter samples into power estimates using a trained model.
class OnlineEstimator {
public:
  /// `smoothing` in [0,1): exponential smoothing factor applied to the
  /// estimate stream (0 = none).
  explicit OnlineEstimator(PowerModel model, double smoothing = 0.0,
                           EstimatorGuards guards = {});

  /// Estimate power for one sample. Strict: throws InvalidArgument when the
  /// sample is degenerate (non-positive elapsed time, missing events, ...).
  double estimate(const CounterSample& sample);

  /// Hardened path: never throws on bad data, never emits NaN/Inf or a
  /// value outside the guard range. Invalid samples (non-finite or
  /// non-positive elapsed/frequency/voltage, missing or non-finite event
  /// counts, or a non-finite model output) hold the last good estimate and
  /// degrade health(); after guards.max_consecutive_invalid misses in a row
  /// the estimator reports FAILED (output still held and clamped). A valid
  /// sample restores health to OK.
  double estimate_guarded(const CounterSample& sample);

  /// Health of the guarded estimate stream.
  HealthState health() const { return health_; }
  /// Consecutive invalid samples absorbed since the last good one — the
  /// staleness bound of the held estimate.
  std::size_t consecutive_invalid() const { return consecutive_invalid_; }

  /// The model's event requirements (what to pass to CounterSource::start).
  const std::vector<pmc::Preset>& required_events() const {
    return model_.spec().events;
  }

  const PowerModel& model() const { return model_; }
  const EstimatorGuards& guards() const { return guards_; }

  /// Reset the smoothing and degradation state.
  void reset();

private:
  /// Validates a sample and computes the raw model output; nullopt when the
  /// sample or the output is unusable.
  std::optional<double> try_estimate(const CounterSample& sample) const;
  double smooth(double raw);

  PowerModel model_;
  double smoothing_;
  EstimatorGuards guards_;
  std::optional<double> smoothed_;
  std::optional<double> last_good_;
  std::size_t consecutive_invalid_ = 0;
  HealthState health_ = HealthState::Ok;
};

}  // namespace pwx::core
