// Fleet-scale estimation (the paper's outlook: peta/exa-scale application).
//
// Simulates a small cluster of dual-socket Haswell-EP nodes — each a
// different physical part (own sensor calibration and VID offsets) — running
// a mixed workload, and drives all nodes' counter streams through one
// FleetEstimator built from a single node-trained model. Compares the
// estimated rack power against the simulated reference measurement, i.e.
// quantifies how well a node model transfers to a fleet.
//
// Build & run:  ./build/examples/cluster_estimation [nodes]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "acquire/campaign.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "host/sim_source.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace pwx;
  const std::size_t node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  std::puts("training the node model on the standard campaign ...");
  core::SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  core::FeatureSpec spec;
  spec.events = core::select_events(acquire::standard_selection_dataset(),
                                    pmc::haswell_ep_available_events(), opt)
                    .selected();
  const core::PowerModel model =
      core::train_model(acquire::standard_training_dataset(), spec);
  core::FleetEstimator fleet(model, /*smoothing=*/0.2, /*staleness_horizon_s=*/5.0);

  // One engine per node: a different part each (machine seed), running a
  // node-specific workload at a node-specific operating point.
  const std::vector<workloads::Workload> all = workloads::all_workloads();
  struct Node {
    core::NodeId id;
    sim::Engine engine;
    host::SimulatedCounterSource source;
  };
  std::vector<Node> nodes;
  nodes.reserve(node_count);
  const std::vector<double> freqs{2.0, 2.4, 2.6};
  for (std::size_t n = 0; n < node_count; ++n) {
    sim::Engine engine = sim::Engine::haswell_ep(0x1000 + n);
    sim::RunConfig rc;
    rc.frequency_ghz = freqs[n % freqs.size()];
    rc.threads = 24;
    rc.interval_s = 0.5;
    rc.duration_scale = 0.4;
    rc.seed = 77 + n;
    const workloads::Workload& workload = all[(n * 5 + 2) % all.size()];
    host::SimulatedCounterSource source(engine, workload, rc);
    std::printf("  node%02zu: %-12s @ %.1f GHz\n", n, workload.name.c_str(),
                rc.frequency_ghz);
    // Intern once at node discovery; the telemetry loop is handle-based.
    nodes.push_back(Node{fleet.intern("node" + std::to_string(n)),
                         std::move(engine), std::move(source)});
  }
  for (Node& node : nodes) {
    node.source.start(model.spec().events);
  }

  std::puts("\n  t[s]   nodes  est. total [W]  true total [W]  error");
  double now = 0.0;
  bool any = true;
  std::vector<core::NodeSample> batch;
  core::DenseSample dense = fleet.layout().make_sample();
  while (any) {
    any = false;
    double true_total = 0.0;
    batch.clear();
    // Collect one telemetry round, then ingest it as a single batch — one
    // lock acquisition per shard instead of one per sample.
    for (Node& node : nodes) {
      if (const auto sample = node.source.read()) {
        fleet.layout().to_dense_guarded(*sample, dense);
        batch.push_back(core::NodeSample{node.id, now, dense});
        true_total += node.source.last_interval_power();
        any = true;
      }
    }
    if (!any) {
      break;
    }
    fleet.ingest_batch(batch);
    now += 0.5;
    const core::FleetSnapshot snap = fleet.snapshot(now);
    std::printf("  %5.1f  %5zu  %14.1f  %14.1f  %+5.1f%%\n", now,
                snap.nodes_reporting, snap.total_watts, true_total,
                100.0 * (snap.total_watts - true_total) / true_total);
  }

  const core::FleetSnapshot final_snap = fleet.snapshot(now);
  if (std::isnan(final_snap.min_node_watts)) {
    std::puts("\nfinal fleet spread: no node reporting");
  } else {
    std::printf("\nfinal fleet spread: min node %.1f W, max node %.1f W\n",
                final_snap.min_node_watts, final_snap.max_node_watts);
  }
  return 0;
}
