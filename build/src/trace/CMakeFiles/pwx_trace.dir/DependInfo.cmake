
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/phase_profile.cpp" "src/trace/CMakeFiles/pwx_trace.dir/phase_profile.cpp.o" "gcc" "src/trace/CMakeFiles/pwx_trace.dir/phase_profile.cpp.o.d"
  "/root/repo/src/trace/plugins.cpp" "src/trace/CMakeFiles/pwx_trace.dir/plugins.cpp.o" "gcc" "src/trace/CMakeFiles/pwx_trace.dir/plugins.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/trace/CMakeFiles/pwx_trace.dir/serialize.cpp.o" "gcc" "src/trace/CMakeFiles/pwx_trace.dir/serialize.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/pwx_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/pwx_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pwx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/pwx_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pwx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pwx_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pwx_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pwx_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
