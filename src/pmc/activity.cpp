#include "pmc/activity.hpp"

#include "common/error.hpp"

namespace pwx::pmc {

ActivityCounts& ActivityCounts::operator+=(const ActivityCounts& o) {
  cycles += o.cycles;
  ref_cycles += o.ref_cycles;
  instructions += o.instructions;
  load_ins += o.load_ins;
  store_ins += o.store_ins;
  branch_cn += o.branch_cn;
  branch_ucn += o.branch_ucn;
  branch_taken += o.branch_taken;
  branch_misp += o.branch_misp;
  l1d_load_miss += o.l1d_load_miss;
  l1d_store_miss += o.l1d_store_miss;
  l1i_miss += o.l1i_miss;
  l2_data_read += o.l2_data_read;
  l2_data_write += o.l2_data_write;
  l2_inst_read += o.l2_inst_read;
  l2_load_miss += o.l2_load_miss;
  l2_store_miss += o.l2_store_miss;
  l2_inst_miss += o.l2_inst_miss;
  l3_data_read += o.l3_data_read;
  l3_data_write += o.l3_data_write;
  l3_inst_read += o.l3_inst_read;
  l3_load_miss += o.l3_load_miss;
  l3_total_miss += o.l3_total_miss;
  tlb_data_miss += o.tlb_data_miss;
  tlb_inst_miss += o.tlb_inst_miss;
  prefetch_miss += o.prefetch_miss;
  snoop_requests += o.snoop_requests;
  shared_access += o.shared_access;
  clean_exclusive += o.clean_exclusive;
  invalidations += o.invalidations;
  stall_issue_cycles += o.stall_issue_cycles;
  full_issue_cycles += o.full_issue_cycles;
  stall_compl_cycles += o.stall_compl_cycles;
  full_compl_cycles += o.full_compl_cycles;
  resource_stall_cycles += o.resource_stall_cycles;
  mem_write_stall_cycles += o.mem_write_stall_cycles;
  return *this;
}

ActivityCounts& ActivityCounts::operator*=(double factor) {
  cycles *= factor;
  ref_cycles *= factor;
  instructions *= factor;
  load_ins *= factor;
  store_ins *= factor;
  branch_cn *= factor;
  branch_ucn *= factor;
  branch_taken *= factor;
  branch_misp *= factor;
  l1d_load_miss *= factor;
  l1d_store_miss *= factor;
  l1i_miss *= factor;
  l2_data_read *= factor;
  l2_data_write *= factor;
  l2_inst_read *= factor;
  l2_load_miss *= factor;
  l2_store_miss *= factor;
  l2_inst_miss *= factor;
  l3_data_read *= factor;
  l3_data_write *= factor;
  l3_inst_read *= factor;
  l3_load_miss *= factor;
  l3_total_miss *= factor;
  tlb_data_miss *= factor;
  tlb_inst_miss *= factor;
  prefetch_miss *= factor;
  snoop_requests *= factor;
  shared_access *= factor;
  clean_exclusive *= factor;
  invalidations *= factor;
  stall_issue_cycles *= factor;
  full_issue_cycles *= factor;
  stall_compl_cycles *= factor;
  full_compl_cycles *= factor;
  resource_stall_cycles *= factor;
  mem_write_stall_cycles *= factor;
  return *this;
}

double preset_value(Preset preset, const ActivityCounts& c) {
  switch (preset) {
    case Preset::L1_DCM: return c.l1d_load_miss + c.l1d_store_miss;
    case Preset::L1_ICM: return c.l1i_miss;
    case Preset::L1_TCM: return c.l1d_load_miss + c.l1d_store_miss + c.l1i_miss;
    case Preset::L1_LDM: return c.l1d_load_miss;
    case Preset::L1_STM: return c.l1d_store_miss;

    case Preset::L2_DCM: return c.l2_load_miss + c.l2_store_miss;
    case Preset::L2_ICM: return c.l2_inst_miss;
    case Preset::L2_TCM: return c.l2_load_miss + c.l2_store_miss + c.l2_inst_miss;
    case Preset::L2_LDM: return c.l2_load_miss;
    case Preset::L2_STM: return c.l2_store_miss;
    case Preset::L2_DCA: return c.l2_data_read + c.l2_data_write;
    case Preset::L2_DCR: return c.l2_data_read;
    case Preset::L2_DCW: return c.l2_data_write;
    case Preset::L2_ICA: return c.l2_inst_read;
    case Preset::L2_ICR: return c.l2_inst_read;
    case Preset::L2_TCA: return c.l2_data_read + c.l2_data_write + c.l2_inst_read;
    case Preset::L2_TCR: return c.l2_data_read + c.l2_inst_read;
    case Preset::L2_TCW: return c.l2_data_write;

    case Preset::L3_TCM: return c.l3_total_miss;
    case Preset::L3_LDM: return c.l3_load_miss;
    case Preset::L3_DCA: return c.l3_data_read + c.l3_data_write;
    case Preset::L3_DCR: return c.l3_data_read;
    case Preset::L3_DCW: return c.l3_data_write;
    case Preset::L3_ICA: return c.l3_inst_read;
    case Preset::L3_ICR: return c.l3_inst_read;
    case Preset::L3_TCA: return c.l3_data_read + c.l3_data_write + c.l3_inst_read;
    case Preset::L3_TCR: return c.l3_data_read + c.l3_inst_read;
    case Preset::L3_TCW: return c.l3_data_write;

    case Preset::CA_SNP: return c.snoop_requests;
    case Preset::CA_SHR: return c.shared_access;
    case Preset::CA_CLN: return c.clean_exclusive;
    case Preset::CA_INV: return c.invalidations;
    case Preset::CA_ITV: return c.invalidations;  // intervention ~ invalidation traffic

    case Preset::TLB_DM: return c.tlb_data_miss;
    case Preset::TLB_IM: return c.tlb_inst_miss;
    case Preset::PRF_DM: return c.prefetch_miss;

    case Preset::MEM_WCY: return c.mem_write_stall_cycles;
    case Preset::STL_ICY: return c.stall_issue_cycles;
    case Preset::FUL_ICY: return c.full_issue_cycles;
    case Preset::STL_CCY: return c.stall_compl_cycles;
    case Preset::FUL_CCY: return c.full_compl_cycles;
    case Preset::RES_STL: return c.resource_stall_cycles;

    case Preset::BR_UCN: return c.branch_ucn;
    case Preset::BR_CN: return c.branch_cn;
    case Preset::BR_TKN: return c.branch_taken;
    case Preset::BR_NTK: return c.branch_cn - c.branch_taken;
    case Preset::BR_MSP: return c.branch_misp;
    case Preset::BR_PRC: return c.branch_cn - c.branch_misp;
    case Preset::BR_INS: return c.branch_cn + c.branch_ucn;

    case Preset::TOT_INS: return c.instructions;
    case Preset::LD_INS: return c.load_ins;
    case Preset::SR_INS: return c.store_ins;
    case Preset::LST_INS: return c.load_ins + c.store_ins;

    // FP presets model non-Haswell platforms; approximate from completion
    // histogram (not used by the reproduction since they are unavailable).
    case Preset::FP_INS: return 0.0;
    case Preset::FDV_INS: return 0.0;
    case Preset::SP_OPS: return 0.0;
    case Preset::DP_OPS: return 0.0;
    case Preset::VEC_SP: return 0.0;
    case Preset::VEC_DP: return 0.0;
    case Preset::STL_FPU: return 0.0;

    case Preset::TOT_CYC: return c.cycles;
    case Preset::REF_CYC: return c.ref_cycles;

    case Preset::kCount: break;
  }
  throw InvalidArgument("preset_value: invalid preset");
}

}  // namespace pwx::pmc
